// Package standalone reimplements the stand-alone joins of Balkesen et al.
// that the paper validates against (Section 5.1.1, "Joins from Balkesen et
// al."): a non-partitioned hash join (NPJ) and a two-pass radix-partitioned
// join (PRJ), both operating on pre-materialized row arrays of fixed-width
// <key, payload> tuples and reporting only the match count — exactly the
// microbenchmark setting of the prior work (Table 1 workloads A and B).
//
// Unlike the DBMS-integrated joins of internal/core, these know the input
// cardinalities in advance, size their tables exactly, use key values
// directly for partitioning, and never materialize results — the
// simplifications the paper calls out as biasing prior evaluations.
package standalone

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Relation is a pre-materialized row array of fixed-width tuples:
// either 16 bytes (8 B key + 8 B payload, workload A) or 8 bytes
// (4 B key + 4 B payload, workload B).
type Relation struct {
	Data      []byte
	TupleSize int
	N         int
}

// NewRelation allocates a relation of n tuples.
func NewRelation(n, tupleSize int) *Relation {
	if tupleSize != 8 && tupleSize != 16 {
		panic("standalone: tuple size must be 8 or 16 bytes")
	}
	return &Relation{Data: make([]byte, n*tupleSize), TupleSize: tupleSize, N: n}
}

// Key returns the key of tuple i.
func (r *Relation) Key(i int) uint64 {
	off := i * r.TupleSize
	if r.TupleSize == 8 {
		return uint64(binary.LittleEndian.Uint32(r.Data[off:]))
	}
	return binary.LittleEndian.Uint64(r.Data[off:])
}

// SetTuple writes tuple i.
func (r *Relation) SetTuple(i int, key, pay uint64) {
	off := i * r.TupleSize
	if r.TupleSize == 8 {
		binary.LittleEndian.PutUint32(r.Data[off:], uint32(key))
		binary.LittleEndian.PutUint32(r.Data[off+4:], uint32(pay))
		return
	}
	binary.LittleEndian.PutUint64(r.Data[off:], key)
	binary.LittleEndian.PutUint64(r.Data[off+8:], pay)
}

// ByteSize returns the relation's size in bytes.
func (r *Relation) ByteSize() int64 { return int64(len(r.Data)) }

// parallelChunks runs fn over [0,n) split into worker chunks.
func parallelChunks(n, workers int, fn func(worker, start, end int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > n {
			end = n
		}
		if start >= end {
			break
		}
		wg.Add(1)
		go func(w, s, e int) {
			defer wg.Done()
			fn(w, s, e)
		}(w, start, end)
	}
	wg.Wait()
}

// hash32 is the same multiplicative mixer Balkesen's code applies before
// bucketing (they mostly rely on dense keys; the mixer keeps skewed inputs
// usable).
func hash32(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

// NPJ is the non-partitioned join: one global chaining hash table over the
// build relation, probed in parallel. Returns the number of matches.
func NPJ(build, probe *Relation, workers int) int64 {
	n := build.N
	dirSize := 8
	for dirSize < 2*n {
		dirSize <<= 1
	}
	mask := uint64(dirSize - 1)
	dir := make([]int32, dirSize)
	for i := range dir {
		dir[i] = -1
	}
	next := make([]int32, n)
	keys := make([]uint64, n)
	// Parallel build with CAS chain pushes.
	parallelChunks(n, workers, func(_, start, end int) {
		for i := start; i < end; i++ {
			k := build.Key(i)
			keys[i] = k
			slot := hash32(k) & mask
			for {
				old := atomic.LoadInt32(&dir[slot])
				next[i] = old
				if atomic.CompareAndSwapInt32(&dir[slot], old, int32(i)) {
					break
				}
			}
		}
	})
	// Parallel probe, counting matches.
	var total atomic.Int64
	parallelChunks(probe.N, workers, func(_, start, end int) {
		var count int64
		for i := start; i < end; i++ {
			k := probe.Key(i)
			idx := dir[hash32(k)&mask]
			for idx >= 0 {
				if keys[idx] == k {
					count++
				}
				idx = next[idx]
			}
		}
		total.Add(count)
	})
	return total.Load()
}

// prjBits picks the two-pass fan-out for the PRJ: enough bits that a build
// partition fits in cacheBudget bytes, split across two passes.
func prjBits(build *Relation, cacheBudget int) (b1, b2 int) {
	total := 0
	for sz := build.ByteSize(); sz > int64(cacheBudget) && total < 14; sz >>= 1 {
		total++
	}
	if total < 4 {
		total = 4
	}
	b1 = (total + 1) / 2
	if b1 > 7 {
		b1 = 7
	}
	b2 = total - b1
	return b1, b2
}

// partitionPass scatters src into dst by radix bits [shift, shift+bits) of
// the hashed key, given per-chunk histograms: the textbook parallel
// partitioning of Section 3.2 (histogram, prefix sum, scatter).
func partitionPass(src, dst *Relation, lo, hi int, shift, bits, workers int, base int) []int {
	fanout := 1 << bits
	mask := uint64(fanout - 1)
	n := hi - lo
	ts := src.TupleSize
	nw := workers
	if nw < 1 {
		nw = 1
	}
	hists := make([][]int, nw)
	parallelChunks(n, nw, func(w, start, end int) {
		h := make([]int, fanout)
		for i := lo + start; i < lo+end; i++ {
			h[(hash32(src.Key(i))>>shift)&mask]++
		}
		hists[w] = h
	})
	// Prefix sums: per-partition bases, then per-worker offsets.
	sizes := make([]int, fanout+1)
	for p := 0; p < fanout; p++ {
		for _, h := range hists {
			if h != nil {
				sizes[p+1] += h[p]
			}
		}
	}
	for p := 0; p < fanout; p++ {
		sizes[p+1] += sizes[p]
	}
	offsets := make([][]int, nw)
	run := make([]int, fanout)
	copy(run, sizes[:fanout])
	for w := 0; w < nw; w++ {
		if hists[w] == nil {
			continue
		}
		o := make([]int, fanout)
		for p := 0; p < fanout; p++ {
			o[p] = run[p]
			run[p] += hists[w][p]
		}
		offsets[w] = o
	}
	parallelChunks(n, nw, func(w, start, end int) {
		o := offsets[w]
		for i := lo + start; i < lo+end; i++ {
			p := (hash32(src.Key(i)) >> shift) & mask
			j := base + o[p]
			o[p]++
			copy(dst.Data[j*ts:(j+1)*ts], src.Data[i*ts:(i+1)*ts])
		}
	})
	for p := range sizes {
		sizes[p] += base
	}
	return sizes
}

// PRJ is the two-pass parallel radix join: both relations are partitioned
// on hashed-key bits, then each partition pair is joined with a private
// hash table. Returns the match count.
func PRJ(build, probe *Relation, workers int, cacheBudget int) int64 {
	b1, b2 := prjBits(build, cacheBudget)
	f1 := 1 << b1

	bTmp := NewRelation(build.N, build.TupleSize)
	pTmp := NewRelation(probe.N, probe.TupleSize)
	bFence1 := partitionPass(build, bTmp, 0, build.N, 0, b1, workers, 0)
	pFence1 := partitionPass(probe, pTmp, 0, probe.N, 0, b1, workers, 0)

	bOut, pOut := bTmp, pTmp
	bFences := make([][]int, f1)
	pFences := make([][]int, f1)
	if b2 > 0 {
		bOut = NewRelation(build.N, build.TupleSize)
		pOut = NewRelation(probe.N, probe.TupleSize)
		// Second pass: one task per first-pass partition.
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					p1 := int(cursor.Add(1)) - 1
					if p1 >= f1 {
						return
					}
					bFences[p1] = partitionPass(bTmp, bOut, bFence1[p1], bFence1[p1+1], b1, b2, 1, bFence1[p1])
					pFences[p1] = partitionPass(pTmp, pOut, pFence1[p1], pFence1[p1+1], b1, b2, 1, pFence1[p1])
				}
			}()
		}
		wg.Wait()
	} else {
		for p1 := 0; p1 < f1; p1++ {
			bFences[p1] = []int{bFence1[p1], bFence1[p1+1]}
			pFences[p1] = []int{pFence1[p1], pFence1[p1+1]}
		}
	}

	// Join phase: task-based over all final partitions (helps skew).
	f2 := 1 << b2
	if b2 == 0 {
		f2 = 1
	}
	nparts := f1 * f2
	var total atomic.Int64
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ht partTable
			var count int64
			for {
				t := int(cursor.Add(1)) - 1
				if t >= nparts {
					break
				}
				p1, p2 := t%f1, t/f1
				bLo, bHi := bFences[p1][p2], bFences[p1][p2+1]
				pLo, pHi := pFences[p1][p2], pFences[p1][p2+1]
				if bHi == bLo || pHi == pLo {
					continue
				}
				ht.reset(bHi - bLo)
				for i := bLo; i < bHi; i++ {
					ht.insert(bOut.Key(i), int32(i))
				}
				for i := pLo; i < pHi; i++ {
					count += ht.count(pOut.Key(i))
				}
			}
			total.Add(count)
		}()
	}
	wg.Wait()
	return total.Load()
}

// partTable is the per-partition chaining table of the PRJ's join phase,
// reused across partitions to avoid reallocation.
type partTable struct {
	heads  []int32
	next   []int32
	keys   []uint64
	mask   uint64
	size   int
	cursor int
}

func (t *partTable) reset(n int) {
	size := 8
	for size < n {
		size <<= 1
	}
	if size > len(t.heads) {
		t.heads = make([]int32, size)
	}
	if n > len(t.next) {
		t.next = make([]int32, n)
		t.keys = make([]uint64, n)
	}
	t.size = size
	t.mask = uint64(size - 1)
	t.cursor = 0
	for i := 0; i < size; i++ {
		t.heads[i] = -1
	}
}

func (t *partTable) insert(k uint64, _ int32) {
	i := t.cursor
	t.cursor++
	t.keys[i] = k
	slot := (hash32(k) >> 20) & t.mask
	t.next[i] = t.heads[slot]
	t.heads[slot] = int32(i)
}

func (t *partTable) count(k uint64) int64 {
	var c int64
	idx := t.heads[(hash32(k)>>20)&t.mask]
	for idx >= 0 {
		if t.keys[idx] == k {
			c++
		}
		idx = t.next[idx]
	}
	return c
}
