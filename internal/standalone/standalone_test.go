package standalone

import (
	"math/rand"
	"testing"
	"testing/quick"

	"partitionjoin/internal/zipf"
)

// refCount joins with a map.
func refCount(build, probe *Relation) int64 {
	counts := map[uint64]int64{}
	for i := 0; i < build.N; i++ {
		counts[build.Key(i)]++
	}
	var total int64
	for i := 0; i < probe.N; i++ {
		total += counts[probe.Key(i)]
	}
	return total
}

func fkRelations(nBuild, nProbe, tupleSize int, seed int64) (*Relation, *Relation) {
	rng := rand.New(rand.NewSource(seed))
	build := NewRelation(nBuild, tupleSize)
	for i := 0; i < nBuild; i++ {
		build.SetTuple(i, uint64(i), rng.Uint64())
	}
	probe := NewRelation(nProbe, tupleSize)
	for i := 0; i < nProbe; i++ {
		probe.SetTuple(i, uint64(rng.Intn(nBuild)), rng.Uint64())
	}
	return build, probe
}

func TestNPJMatchesReference(t *testing.T) {
	for _, ts := range []int{8, 16} {
		for _, workers := range []int{1, 4} {
			build, probe := fkRelations(1000, 8000, ts, 5)
			want := refCount(build, probe)
			if got := NPJ(build, probe, workers); got != want {
				t.Fatalf("ts=%d w=%d: NPJ = %d, want %d", ts, workers, got, want)
			}
		}
	}
}

func TestPRJMatchesReference(t *testing.T) {
	for _, ts := range []int{8, 16} {
		for _, workers := range []int{1, 4} {
			build, probe := fkRelations(1000, 8000, ts, 6)
			want := refCount(build, probe)
			if got := PRJ(build, probe, workers, 1<<12); got != want {
				t.Fatalf("ts=%d w=%d: PRJ = %d, want %d", ts, workers, got, want)
			}
		}
	}
}

func TestPRJWithDuplicatesAndSkew(t *testing.T) {
	for _, z := range []float64{0, 1, 2} {
		g := zipf.New(500, z, 3)
		build, _ := fkRelations(500, 0, 16, 7)
		probe := NewRelation(20000, 16)
		for i := 0; i < probe.N; i++ {
			probe.SetTuple(i, uint64(g.Next()), 0)
		}
		want := refCount(build, probe)
		if got := PRJ(build, probe, 4, 1<<12); got != want {
			t.Fatalf("z=%v: PRJ = %d, want %d", z, got, want)
		}
		if got := NPJ(build, probe, 4); got != want {
			t.Fatalf("z=%v: NPJ = %d, want %d", z, got, want)
		}
	}
}

func TestJoinsAgreeProperty(t *testing.T) {
	check := func(buildKeys, probeKeys []uint16) bool {
		if len(buildKeys) == 0 {
			buildKeys = []uint16{1}
		}
		build := NewRelation(len(buildKeys), 16)
		for i, k := range buildKeys {
			build.SetTuple(i, uint64(k), 0)
		}
		probe := NewRelation(len(probeKeys), 16)
		for i, k := range probeKeys {
			probe.SetTuple(i, uint64(k), 0)
		}
		want := refCount(build, probe)
		return NPJ(build, probe, 2) == want && PRJ(build, probe, 2, 1<<10) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRelationAccessorsRoundTrip(t *testing.T) {
	r := NewRelation(10, 8)
	r.SetTuple(3, 0xdeadbeef, 0x1234)
	if r.Key(3) != 0xdeadbeef {
		t.Fatalf("4-byte key round trip failed: %x", r.Key(3))
	}
	r16 := NewRelation(10, 16)
	r16.SetTuple(9, 1<<40, 7)
	if r16.Key(9) != 1<<40 {
		t.Fatalf("8-byte key round trip failed: %x", r16.Key(9))
	}
	if r16.ByteSize() != 160 {
		t.Fatalf("byte size %d", r16.ByteSize())
	}
}
