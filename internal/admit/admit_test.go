package admit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"partitionjoin/internal/faultinject"
)

// balanced asserts the broker pool is exactly back to its idle state: no
// reservation leaked a byte.
func balanced(t *testing.T, b *Broker) {
	t.Helper()
	if got := b.InUse(); got != 0 {
		t.Fatalf("pool imbalance: %d bytes still checked out", got)
	}
	if b.Pool() > 0 && b.Free() != b.Pool() {
		t.Fatalf("free %d != pool %d after all releases", b.Free(), b.Pool())
	}
	if got := b.Running(); got != 0 {
		t.Fatalf("%d queries still counted running", got)
	}
}

func TestAdmitReservesAndReleases(t *testing.T) {
	b := NewBroker(Config{GlobalMem: 1000})
	defer b.Close()
	r, ctx, err := b.Admit(context.Background(), 400)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Err() != nil {
		t.Fatal("fresh admission context already cancelled")
	}
	if r.Bytes() != 400 || b.Free() != 600 || b.InUse() != 400 {
		t.Fatalf("accounting off: bytes=%d free=%d inUse=%d", r.Bytes(), b.Free(), b.InUse())
	}
	r.Release()
	r.Release() // idempotent
	balanced(t, b)
}

func TestAdmitDefaultAndClamp(t *testing.T) {
	b := NewBroker(Config{GlobalMem: 800})
	defer b.Close()
	r1, _, err := b.Admit(context.Background(), 0) // default = pool/8
	if err != nil {
		t.Fatal(err)
	}
	if r1.Bytes() != 100 {
		t.Fatalf("default reservation = %d, want 100", r1.Bytes())
	}
	r1.Release()
	r2, _, err := b.Admit(context.Background(), 1<<40) // clamped to pool
	if err != nil {
		t.Fatal(err)
	}
	if r2.Bytes() != 800 {
		t.Fatalf("oversized request reserved %d, want clamp to 800", r2.Bytes())
	}
	r2.Release()
	balanced(t, b)
}

func TestQueueAdmitsFIFOOnRelease(t *testing.T) {
	b := NewBroker(Config{GlobalMem: 100, MaxWait: 5 * time.Second})
	defer b.Close()
	r1, _, err := b.Admit(context.Background(), 80)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	var r2 *Reservation
	go func() {
		var err error
		r2, _, err = b.Admit(context.Background(), 80)
		got <- err
	}()
	// The second query must queue, not fail and not sneak in.
	deadline := time.Now().Add(time.Second)
	for b.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if q := b.Queued(); q != 1 {
		t.Fatalf("queue depth %d, want 1", q)
	}
	select {
	case err := <-got:
		t.Fatalf("second query admitted while pool exhausted: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	r1.Release()
	if err := <-got; err != nil {
		t.Fatalf("queued query not admitted on release: %v", err)
	}
	if r2.Waited() <= 0 {
		t.Fatal("queued admission reports zero wait")
	}
	r2.Release()
	balanced(t, b)
}

func TestShedsWhenQueueFull(t *testing.T) {
	b := NewBroker(Config{GlobalMem: 100, QueueDepth: 1, MaxWait: 5 * time.Second})
	defer b.Close()
	r1, _, err := b.Admit(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	go b.Admit(context.Background(), 50) // fills the queue
	deadline := time.Now().Add(time.Second)
	for b.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	_, _, err = b.Admit(context.Background(), 50)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue returned %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v is not *OverloadError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("no backoff suggestion: %+v", oe)
	}
	if !oe.Retryable() {
		t.Fatal("overload not marked retryable")
	}
	if b.Sheds() != 1 {
		t.Fatalf("sheds = %d, want 1", b.Sheds())
	}
	r1.Release()
	// Drain the queued admission so the pool balances.
	deadline = time.Now().Add(time.Second)
	for b.InUse() != 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

func TestShedsAfterMaxWait(t *testing.T) {
	b := NewBroker(Config{GlobalMem: 100, MaxWait: 30 * time.Millisecond})
	defer b.Close()
	r1, _, err := b.Admit(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Release()
	start := time.Now()
	_, _, err = b.Admit(context.Background(), 50)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("wait-limited admission returned %v, want ErrOverloaded", err)
	}
	if waited := time.Since(start); waited < 25*time.Millisecond {
		t.Fatalf("shed after only %v, before the wait limit", waited)
	}
	if b.Queued() != 0 {
		t.Fatal("shed waiter left in queue")
	}
}

func TestCancelledWhileQueued(t *testing.T) {
	b := NewBroker(Config{GlobalMem: 100, MaxWait: 5 * time.Second})
	defer b.Close()
	r1, _, err := b.Admit(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		deadline := time.Now().Add(time.Second)
		for b.Queued() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, _, err = b.Admit(ctx, 50)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wait returned %v, want context.Canceled", err)
	}
	if b.Queued() != 0 {
		t.Fatal("cancelled waiter left in queue")
	}
}

func TestMaxConcurrencyGates(t *testing.T) {
	b := NewBroker(Config{MaxConcurrency: 1, MaxWait: -1})
	defer b.Close()
	r1, _, err := b.Admit(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Admit(context.Background(), 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second concurrent query returned %v, want immediate shed (MaxWait < 0)", err)
	}
	r1.Release()
	if _, _, err := b.Admit(context.Background(), 0); err != nil {
		t.Fatalf("slot not freed by release: %v", err)
	}
}

func TestTryGrowDrawsFromPoolAndRespectsQueue(t *testing.T) {
	b := NewBroker(Config{GlobalMem: 100, MaxWait: 5 * time.Second})
	defer b.Close()
	r1, _, err := b.Admit(context.Background(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if got := r1.TryGrow(30); got != 30 {
		t.Fatalf("TryGrow(30) = %d with 60 free", got)
	}
	if r1.Bytes() != 70 || b.Free() != 30 {
		t.Fatalf("grow accounting off: bytes=%d free=%d", r1.Bytes(), b.Free())
	}
	if got := r1.TryGrow(31); got != 0 {
		t.Fatalf("TryGrow(31) = %d with 30 free, want all-or-nothing 0", got)
	}
	// A queued query blocks further growth: backpressure outranks appetite.
	go b.Admit(context.Background(), 80)
	deadline := time.Now().Add(time.Second)
	for b.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := r1.TryGrow(10); got != 0 {
		t.Fatalf("TryGrow granted %d while a query was queued", got)
	}
	r1.Release()
	deadline = time.Now().Add(time.Second)
	for b.InUse() != 80 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := b.InUse(); got != 80 {
		t.Fatalf("queued query not admitted after release: inUse=%d", got)
	}
}

func TestReservationFailureSite(t *testing.T) {
	faultinject.FailOnLeak(t)
	b := NewBroker(Config{GlobalMem: 100})
	defer b.Close()
	faultinject.Arm(t, ReserveSite, faultinject.Fault{Kind: faultinject.Fail, Once: true})
	_, _, err := b.Admit(context.Background(), 10)
	var inj *faultinject.Injected
	if !errors.As(err, &inj) {
		t.Fatalf("injected reservation failure not surfaced: %v", err)
	}
	balanced(t, b)
}

func TestReleaseLeakSiteDetectable(t *testing.T) {
	faultinject.FailOnLeak(t)
	b := NewBroker(Config{GlobalMem: 100})
	defer b.Close()
	r, _, err := b.Admit(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(t, ReleaseSite, faultinject.Fault{Kind: faultinject.Fail, Once: true})
	r.Release()
	if got := b.InUse(); got != 60 {
		t.Fatalf("injected leak not visible: InUse = %d, want 60", got)
	}
	if b.Running() != 0 {
		t.Fatal("leaked reservation still counted running")
	}
}

func TestWatchdogCancelsOnInjectedFalsePositive(t *testing.T) {
	faultinject.FailOnLeak(t)
	// The stall window is far longer than the test: only the armed
	// WatchdogSite fault can trip the cancellation, proving the watchdog's
	// cancel-and-reclaim path without real timing.
	b := NewBroker(Config{GlobalMem: 100, StallWindow: time.Hour, WatchdogInterval: 5 * time.Millisecond})
	defer b.Close()
	faultinject.Arm(t, WatchdogSite, faultinject.Fault{Kind: faultinject.Fail, Once: true})
	_, ctx, err := b.Admit(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never cancelled the query")
	}
	if cause := context.Cause(ctx); !errors.Is(cause, ErrStalled) {
		t.Fatalf("cancel cause %v does not wrap ErrStalled", cause)
	}
	var se *StallError
	if !errors.As(context.Cause(ctx), &se) {
		t.Fatal("cause is not *StallError")
	}
	// The watchdog reclaims the reservation itself — the pool balances
	// even though the "query" never called Release.
	balanced(t, b)
	if b.StallKills() != 1 {
		t.Fatalf("stall kills = %d, want 1", b.StallKills())
	}
}

func TestWatchdogIgnoresProgressingQuery(t *testing.T) {
	b := NewBroker(Config{GlobalMem: 100, StallWindow: 30 * time.Millisecond, WatchdogInterval: 5 * time.Millisecond})
	defer b.Close()
	r, ctx, err := b.Admit(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	tick := r.ProgressCounter()
	for i := 0; i < 20; i++ {
		tick.Add(1)
		time.Sleep(5 * time.Millisecond)
		if ctx.Err() != nil {
			t.Fatal("watchdog cancelled a progressing query")
		}
	}
	r.Release()
	balanced(t, b)
}

func TestWatchdogCancelsSilentQuery(t *testing.T) {
	b := NewBroker(Config{GlobalMem: 100, StallWindow: 25 * time.Millisecond, WatchdogInterval: 5 * time.Millisecond})
	defer b.Close()
	_, ctx, err := b.Admit(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("stalled query never cancelled")
	}
	if !errors.Is(context.Cause(ctx), ErrStalled) {
		t.Fatalf("cause %v does not wrap ErrStalled", context.Cause(ctx))
	}
	balanced(t, b)
}

func TestCloseShedsQueuedQueries(t *testing.T) {
	b := NewBroker(Config{GlobalMem: 100, MaxWait: 5 * time.Second})
	r1, _, err := b.Admit(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, _, err := b.Admit(context.Background(), 50)
		got <- err
	}()
	deadline := time.Now().Add(time.Second)
	for b.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	b.Close()
	if err := <-got; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued query at close returned %v, want ErrOverloaded", err)
	}
	r1.Release()
	balanced(t, b)
}

// TestSoakBrokerRace hammers the broker from many goroutines: admissions,
// growth, and releases must keep the pool exactly balanced under -race.
func TestSoakBrokerRace(t *testing.T) {
	b := NewBroker(Config{GlobalMem: 1 << 20, QueueDepth: 8, MaxWait: 50 * time.Millisecond,
		StallWindow: time.Hour, WatchdogInterval: 5 * time.Millisecond})
	defer b.Close()
	var wg sync.WaitGroup
	var admitted, shed int
	var mu sync.Mutex
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, _, err := b.Admit(context.Background(), int64(1<<17+i*1000))
			if errors.Is(err, ErrOverloaded) {
				mu.Lock()
				shed++
				mu.Unlock()
				return
			}
			if err != nil {
				t.Errorf("admit: %v", err)
				return
			}
			r.ProgressCounter().Add(1)
			r.TryGrow(4096)
			time.Sleep(time.Millisecond)
			r.Release()
			mu.Lock()
			admitted++
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if admitted == 0 {
		t.Fatal("soak admitted nothing")
	}
	if admitted+shed != 32 {
		t.Fatalf("accounted %d+%d of 32 queries", admitted, shed)
	}
	balanced(t, b)
}
