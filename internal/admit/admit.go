// Package admit is the process-wide admission layer above the per-query
// memory governor: one Broker arbitrates a global memory pool and a bounded
// admission queue across every concurrently executing query. An arriving
// query asks for a budget reservation; when the pool (or a concurrency
// limit) is exhausted it waits in FIFO order with deadline-aware
// backpressure, and past the queue-depth or wait-time threshold it is shed
// with a typed, retryable overload error carrying a suggested backoff —
// refusing a few queries cleanly beats degrading every query to
// uselessness.
//
// The ladder a query descends under pressure is therefore: queue (wait for
// memory) → shed (ErrOverloaded, retry later) → degrade (the governor sheds
// radix fan-out, falls back to BHJ) → spill (disk). Admission hands each
// query a Reservation; the governor treats it as a live, growable budget
// (govern.Backing), so degradation decisions consult the reservation — and
// the pool behind it — rather than a static number, and a finishing query's
// released bytes immediately admit the next queued one.
//
// A watchdog samples each admitted query's morsel progress; a query that
// makes no progress for a configurable window is cancelled through the
// query context's cancel-cause plumbing (the error wraps ErrStalled) and
// its reservation is reclaimed into the pool at once, so one wedged query
// cannot hold memory hostage.
package admit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/govern"
)

// Fault-injection sites of the admission layer.
const (
	// ReserveSite fails Admit before any state changes, simulating a
	// reservation failure (e.g. the broker's own bookkeeping allocation).
	ReserveSite = "admit.reserve"
	// WatchdogSite makes the watchdog deem a healthy query stalled on its
	// next sweep — the false-positive path.
	WatchdogSite = "admit.watchdog"
	// ReleaseSite makes a reservation release leak: the bytes are not
	// returned to the pool, so leak detection (InUse != 0) can be tested.
	ReleaseSite = "admit.release"
)

var _ = faultinject.Register(ReserveSite, WatchdogSite, ReleaseSite)

// ErrOverloaded is the sentinel matched by errors.Is on every shed
// admission. The concrete error is *OverloadError, which carries the
// suggested backoff.
var ErrOverloaded = errors.New("admit: overloaded")

// ErrStalled is the sentinel matched by errors.Is when the watchdog
// cancelled a query for making no progress; the concrete error is
// *StallError.
var ErrStalled = errors.New("admit: query stalled")

// OverloadError is returned when a query is shed instead of admitted. It is
// retryable by contract: the system was too busy, not wrong, and the caller
// should back off for about RetryAfter before resubmitting.
type OverloadError struct {
	// Reason says which threshold shed the query ("admission queue full",
	// "wait limit exceeded", "broker closed").
	Reason string
	// Queued is the queue depth observed at shed time.
	Queued int
	// Waited is how long the query sat in the queue before being shed.
	Waited time.Duration
	// RetryAfter is the broker's backoff suggestion, derived from the
	// recent average reservation hold time and the current queue depth.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("admit: overloaded: %s (%d queued, waited %v; retry after %v)",
		e.Reason, e.Queued, e.Waited.Round(time.Millisecond), e.RetryAfter.Round(time.Millisecond))
}

// Is makes errors.Is(err, ErrOverloaded) true for every shed admission.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// Retryable reports that resubmitting after RetryAfter is safe and
// expected; overload says nothing about the query itself.
func (e *OverloadError) Retryable() bool { return true }

// StallError is the cancel cause installed by the watchdog.
type StallError struct {
	// Window is the no-progress window that expired.
	Window time.Duration
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("admit: query made no progress for %v and was cancelled by the watchdog", e.Window)
}

// Is makes errors.Is(err, ErrStalled) true for watchdog cancellations.
func (e *StallError) Is(target error) bool { return target == ErrStalled }

// Config sizes a Broker.
type Config struct {
	// GlobalMem is the shared memory pool in bytes; <= 0 means memory is
	// not arbitrated (reservations are accounted but never block).
	GlobalMem int64
	// MaxConcurrency caps the number of admitted (running) queries;
	// <= 0 means unlimited.
	MaxConcurrency int
	// QueueDepth bounds the admission queue; an arrival finding the queue
	// full is shed immediately. <= 0 uses 64.
	QueueDepth int
	// MaxWait bounds how long an arrival may queue before it is shed.
	// 0 uses 2s; negative sheds immediately whenever the query cannot be
	// admitted on arrival.
	MaxWait time.Duration
	// PerQueryDefault is the reservation granted to queries that do not
	// name a budget; <= 0 uses GlobalMem/8 (0 when GlobalMem is 0, i.e.
	// such queries run unbudgeted).
	PerQueryDefault int64
	// StallWindow arms the stuck-query watchdog: an admitted query whose
	// morsel progress counter does not move for this long is cancelled
	// with ErrStalled and its reservation reclaimed. 0 disables the
	// watchdog. The window must comfortably exceed the longest single
	// morsel (and pipeline-breaker close, e.g. a large sort) the workload
	// can produce, since progress ticks at morsel claims.
	StallWindow time.Duration
	// WatchdogInterval is the sampling period; <= 0 uses StallWindow/4
	// (min 10ms).
	WatchdogInterval time.Duration
}

// waiter is one queued admission request.
type waiter struct {
	want  int64
	since time.Time
	ready chan struct{} // closed once res is set
	res   *Reservation  // set under the broker lock before close(ready)
}

// Broker is the process-wide admission controller. The zero value is not
// usable; construct with NewBroker and Close when done (Close stops the
// watchdog and sheds any queued queries).
type Broker struct {
	cfg Config

	mu       sync.Mutex
	free     int64 // remaining pool bytes (tracked only when GlobalMem > 0)
	inUse    int64 // bytes held by admitted reservations (always tracked)
	running  int
	queue    []*waiter
	admitted map[*Reservation]struct{}
	closed   bool

	admits    int64
	sheds     int64
	stallKill int64
	ewmaHold  time.Duration // smoothed reservation hold time (backoff basis)

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewBroker builds a broker and starts its watchdog if cfg.StallWindow > 0.
func NewBroker(cfg Config) *Broker {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxWait == 0 {
		cfg.MaxWait = 2 * time.Second
	}
	if cfg.PerQueryDefault <= 0 && cfg.GlobalMem > 0 {
		cfg.PerQueryDefault = cfg.GlobalMem / 8
	}
	if cfg.WatchdogInterval <= 0 {
		cfg.WatchdogInterval = cfg.StallWindow / 4
		if cfg.WatchdogInterval < 10*time.Millisecond {
			cfg.WatchdogInterval = 10 * time.Millisecond
		}
	}
	b := &Broker{
		cfg:      cfg,
		free:     cfg.GlobalMem,
		admitted: make(map[*Reservation]struct{}),
		stop:     make(chan struct{}),
	}
	if cfg.StallWindow > 0 {
		b.wg.Add(1)
		go b.watchdog()
	}
	return b
}

// Close stops the watchdog and sheds every queued query with an overload
// error naming the shutdown. Admitted queries keep their reservations;
// their releases still balance the pool.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	queued := b.queue
	b.queue = nil
	close(b.stop)
	b.mu.Unlock()
	for _, w := range queued {
		w.res = nil
		close(w.ready)
	}
	b.wg.Wait()
}

// Reservation is one admitted query's claim on the pool. It doubles as the
// query's live budget: the governor can grow it (TryGrow) while the pool
// has headroom, and the watchdog tracks the query's progress through it.
type Reservation struct {
	b *Broker

	mu       sync.Mutex
	bytes    int64 // current size, grows included; kept after release for reporting
	released bool

	waited   time.Time // admit completion, for hold-time accounting
	queuedIn time.Duration

	progress atomic.Int64            // morsel claims; the watchdog's liveness signal
	cancel   context.CancelCauseFunc // guarded by mu (set after admit, read by watchdog)

	// watchdog bookkeeping, guarded by the broker lock
	lastTick int64
	lastMove time.Time
}

// Reservations back governors: growth draws from the shared pool, and
// shrink returns observed slack to it.
var (
	_ govern.Backing  = (*Reservation)(nil)
	_ govern.Shrinker = (*Reservation)(nil)
)

// Bytes returns the reservation's current size (initial grant plus growth).
// It stays readable after Release for summary reporting.
func (r *Reservation) Bytes() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// Waited returns how long the query queued before admission.
func (r *Reservation) Waited() time.Duration {
	if r == nil {
		return 0
	}
	return r.queuedIn
}

// ProgressCounter exposes the liveness counter the executor ticks once per
// claimed morsel; the watchdog samples it.
func (r *Reservation) ProgressCounter() *atomic.Int64 {
	if r == nil {
		return nil
	}
	return &r.progress
}

// TryGrow implements govern.Backing: it attempts to draw n more bytes from
// the pool, returning the bytes granted (all-or-nothing). Growth is denied
// while queries queue — feeding an admitted query's appetite while others
// wait would starve the queue — and after release or revocation.
func (r *Reservation) TryGrow(n int64) int64 {
	if r == nil || n <= 0 {
		return 0
	}
	b := r.b
	b.mu.Lock()
	defer b.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.released || b.closed || len(b.queue) > 0 {
		return 0
	}
	if b.cfg.GlobalMem > 0 {
		if b.free < n {
			return 0
		}
		b.free -= n
	}
	b.inUse += n
	r.bytes += n
	return n
}

// TryShrink implements govern.Shrinker: it returns up to n bytes of the
// reservation to the pool (clamped to the reservation's current size) and
// wakes queued queries that now fit — the adaptation controller's way of
// letting a query that over-estimated hand its slack to waiting neighbours
// without finishing first. Returns the bytes actually reclaimed.
func (r *Reservation) TryShrink(n int64) int64 {
	if r == nil || n <= 0 {
		return 0
	}
	b := r.b
	b.mu.Lock()
	defer b.mu.Unlock()
	r.mu.Lock()
	if r.released {
		r.mu.Unlock()
		return 0
	}
	if n > r.bytes {
		n = r.bytes
	}
	r.bytes -= n
	r.mu.Unlock()
	if n <= 0 {
		return 0
	}
	if b.cfg.GlobalMem > 0 {
		b.free += n
	}
	b.inUse -= n
	b.pump()
	return n
}

// Release returns the reservation to the pool and wakes queued queries. It
// is idempotent; the executor defers it so the pool balances on success,
// error, cancellation, and panic alike. An armed ReleaseSite fault makes
// the release leak (the bytes stay checked out) to exercise leak detection.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	b := r.b
	b.mu.Lock()
	r.mu.Lock()
	if r.released {
		r.mu.Unlock()
		b.mu.Unlock()
		return
	}
	r.released = true
	bytes := r.bytes
	r.mu.Unlock()
	if err := faultinject.ErrAt(ReleaseSite); err != nil {
		// Injected leak: drop the bytes on the floor. InUse stays high,
		// which is exactly what leak detection must notice.
		delete(b.admitted, r)
		b.running--
		b.mu.Unlock()
		return
	}
	if b.cfg.GlobalMem > 0 {
		b.free += bytes
	}
	b.inUse -= bytes
	b.running--
	delete(b.admitted, r)
	if hold := time.Since(r.waited); hold > 0 {
		if b.ewmaHold == 0 {
			b.ewmaHold = hold
		} else {
			b.ewmaHold = (3*b.ewmaHold + hold) / 4
		}
	}
	b.pump()
	b.mu.Unlock()
	r.mu.Lock()
	cancel := r.cancel
	r.mu.Unlock()
	if cancel != nil {
		// The query is over; releasing the derived context is safe and
		// keeps the cancel-cause chain from accumulating.
		cancel(nil)
	}
}

// Admit requests a reservation of want bytes (<= 0 uses the per-query
// default). On success it returns the reservation and a context derived
// from ctx that the watchdog can cancel; the caller must run the query
// under that context and defer Release. On overload it returns an error
// matching ErrOverloaded. A request larger than the whole pool is clamped
// to the pool — the query will degrade or spill within it, which beats
// refusing it forever.
func (b *Broker) Admit(ctx context.Context, want int64) (*Reservation, context.Context, error) {
	if err := faultinject.ErrAt(ReserveSite); err != nil {
		return nil, nil, fmt.Errorf("admit: reservation failed: %w", err)
	}
	if want <= 0 {
		want = b.cfg.PerQueryDefault
	}
	if b.cfg.GlobalMem > 0 && want > b.cfg.GlobalMem {
		want = b.cfg.GlobalMem
	}
	start := time.Now()

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, nil, &OverloadError{Reason: "broker closed", RetryAfter: b.cfg.MaxWait}
	}
	if len(b.queue) == 0 && b.canAdmitLocked(want) {
		res := b.admitLocked(want, 0)
		b.mu.Unlock()
		return res, res.runCtx(ctx), nil
	}
	if len(b.queue) >= b.cfg.QueueDepth || b.cfg.MaxWait < 0 {
		err := b.shedLocked("admission queue full", 0)
		b.mu.Unlock()
		return nil, nil, err
	}
	w := &waiter{want: want, since: start, ready: make(chan struct{})}
	b.queue = append(b.queue, w)
	b.mu.Unlock()

	timer := time.NewTimer(b.cfg.MaxWait)
	defer timer.Stop()
	select {
	case <-w.ready:
		if w.res == nil { // broker closed while queued
			return nil, nil, &OverloadError{Reason: "broker closed", Waited: time.Since(start), RetryAfter: b.cfg.MaxWait}
		}
		return w.res, w.res.runCtx(ctx), nil
	case <-ctx.Done():
		if res := b.abandon(w); res != nil {
			res.Release()
		}
		return nil, nil, fmt.Errorf("admit: cancelled while queued: %w", context.Cause(ctx))
	case <-timer.C:
		if res := b.abandon(w); res != nil {
			// Granted in the instant the timer fired: take the grant.
			return res, res.runCtx(ctx), nil
		}
		b.mu.Lock()
		err := b.shedLocked("wait limit exceeded", time.Since(start))
		b.mu.Unlock()
		return nil, nil, err
	}
}

// RunCtx re-derives the cancellable query context the watchdog acts on.
// Callers that obtained the reservation themselves (e.g. a server holding it
// across result streaming) and then hand it to the executor through
// plan.Options.Reservation must keep running under the context Admit
// returned; the executor does not derive another one. RunCtx exists for
// callers that need to rebind the watchdog's cancel to a fresh context —
// the newest derivation wins.
func (r *Reservation) RunCtx(ctx context.Context) context.Context { return r.runCtx(ctx) }

// runCtx derives the cancellable query context the watchdog acts on.
func (r *Reservation) runCtx(ctx context.Context) context.Context {
	wctx, cancel := context.WithCancelCause(ctx)
	r.mu.Lock()
	r.cancel = cancel
	r.mu.Unlock()
	return wctx
}

// abandon removes w from the queue; if the grant raced ahead it returns the
// already-built reservation (queue removal is then impossible — the waiter
// is gone from the queue already).
func (b *Broker) abandon(w *waiter) *Reservation {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, q := range b.queue {
		if q == w {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			return nil
		}
	}
	select {
	case <-w.ready:
		return w.res
	default:
		return nil
	}
}

// canAdmitLocked checks slots and pool headroom.
func (b *Broker) canAdmitLocked(want int64) bool {
	if b.cfg.MaxConcurrency > 0 && b.running >= b.cfg.MaxConcurrency {
		return false
	}
	if b.cfg.GlobalMem > 0 && want > b.free {
		return false
	}
	return true
}

// admitLocked checks out the reservation.
func (b *Broker) admitLocked(want int64, queued time.Duration) *Reservation {
	if b.cfg.GlobalMem > 0 {
		b.free -= want
	}
	b.inUse += want
	b.running++
	b.admits++
	now := time.Now()
	res := &Reservation{b: b, bytes: want, waited: now, queuedIn: queued, lastMove: now}
	b.admitted[res] = struct{}{}
	return res
}

// pump grants queued waiters in FIFO order while resources allow. Strict
// FIFO is deliberate: skipping a large waiting query in favour of small
// later ones would starve it under sustained load.
func (b *Broker) pump() {
	for len(b.queue) > 0 {
		w := b.queue[0]
		if !b.canAdmitLocked(w.want) {
			return
		}
		b.queue = b.queue[1:]
		w.res = b.admitLocked(w.want, time.Since(w.since))
		close(w.ready)
	}
}

// shedLocked counts a shed and builds the overload error with a backoff
// suggestion scaled by the observed hold time and queue depth.
func (b *Broker) shedLocked(reason string, waited time.Duration) *OverloadError {
	b.sheds++
	retry := b.ewmaHold
	if retry <= 0 {
		retry = b.cfg.MaxWait
		if retry <= 0 {
			retry = 100 * time.Millisecond
		}
	}
	retry *= time.Duration(len(b.queue) + 1)
	if retry > 10*time.Second {
		retry = 10 * time.Second
	}
	return &OverloadError{Reason: reason, Queued: len(b.queue), Waited: waited, RetryAfter: retry}
}

// watchdog periodically samples every admitted query's progress counter.
// A query whose counter has not moved within StallWindow (or for which the
// WatchdogSite fault is armed) is cancelled with a StallError and its
// reservation reclaimed immediately — the pool must not wait for a wedged
// query's goroutines to unwind.
func (b *Broker) watchdog() {
	defer b.wg.Done()
	t := time.NewTicker(b.cfg.WatchdogInterval)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		var stalled []*Reservation
		b.mu.Lock()
		for r := range b.admitted {
			tick := r.progress.Load()
			if tick != r.lastTick {
				r.lastTick = tick
				r.lastMove = now
				continue
			}
			if faultinject.ErrAt(WatchdogSite) != nil || now.Sub(r.lastMove) > b.cfg.StallWindow {
				stalled = append(stalled, r)
			}
		}
		b.stallKill += int64(len(stalled))
		b.mu.Unlock()
		for _, r := range stalled {
			r.mu.Lock()
			cancel := r.cancel
			r.mu.Unlock()
			if cancel != nil {
				cancel(&StallError{Window: b.cfg.StallWindow})
			}
			r.Release()
		}
	}
}

// Free returns the pool bytes currently available (GlobalMem when idle).
func (b *Broker) Free() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.free
}

// InUse returns the bytes held by admitted reservations. Zero after every
// query has released means no reservation leaked.
func (b *Broker) InUse() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// Running returns the number of currently admitted queries.
func (b *Broker) Running() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.running
}

// Queued returns the current admission queue depth.
func (b *Broker) Queued() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// Admits returns the number of admissions granted so far.
func (b *Broker) Admits() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.admits
}

// Sheds returns the number of queries refused with ErrOverloaded.
func (b *Broker) Sheds() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sheds
}

// StallKills returns the number of watchdog cancellations.
func (b *Broker) StallKills() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stallKill
}

// Pool returns the configured pool size.
func (b *Broker) Pool() int64 { return b.cfg.GlobalMem }

// Stats is a single consistent snapshot of the broker's state, taken under
// one lock acquisition — the introspection surface the query service's
// /statsz endpoint exports. The per-field accessors remain for callers that
// need only one number.
type Stats struct {
	// Pool is the configured shared memory pool in bytes (0 = memory not
	// arbitrated).
	Pool int64 `json:"pool_bytes"`
	// Free is the pool headroom; InUse the bytes held by admitted
	// reservations (nonzero after all queries end means a leak).
	Free  int64 `json:"free_bytes"`
	InUse int64 `json:"in_use_bytes"`
	// Running and Queued are the instantaneous admitted / waiting counts.
	Running int `json:"running"`
	Queued  int `json:"queued"`
	// Admits, Sheds, and StallKills are lifetime counters.
	Admits     int64 `json:"admits"`
	Sheds      int64 `json:"sheds"`
	StallKills int64 `json:"stall_kills"`
	// AvgHold is the smoothed reservation hold time the shed backoff is
	// derived from.
	AvgHold time.Duration `json:"avg_hold_ns"`
	// MaxConcurrency and QueueDepth echo the configuration so dashboards
	// can show utilization against the limits.
	MaxConcurrency int `json:"max_concurrency"`
	QueueDepth     int `json:"queue_depth"`
}

// Stats returns a consistent snapshot of pool, queue, and counter state.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		Pool:           b.cfg.GlobalMem,
		Free:           b.free,
		InUse:          b.inUse,
		Running:        b.running,
		Queued:         len(b.queue),
		Admits:         b.admits,
		Sheds:          b.sheds,
		StallKills:     b.stallKill,
		AvgHold:        b.ewmaHold,
		MaxConcurrency: b.cfg.MaxConcurrency,
		QueueDepth:     b.cfg.QueueDepth,
	}
}
