package storage

import (
	"bytes"
	"sort"
)

// StrCol is the read/append interface shared by the two string column
// representations: the plain arena (StringColumn) and the dictionary-encoded
// form (DictColumn). Callers that only read values or append rows work
// against either; code that needs the representation (scans packing codes,
// pushdown translating predicates) type-switches on the concrete type.
type StrCol interface {
	Column
	Value(i int) []byte
	Append(v []byte)
	AppendString(v string)
}

// DictColumn stores a low-cardinality string column as an int32 code per row
// plus a dictionary arena holding each distinct value once. The dictionary is
// kept SORTED: code order is lexicographic byte order. That invariant is what
// makes the column more than a compression trick — equality predicates become
// one binary search at plan time, range predicates become code-range checks,
// and sorting or grouping on the raw codes matches sorting or grouping on the
// decoded strings.
type DictColumn struct {
	// Codes[i] indexes the dictionary entry for row i.
	Codes []int32
	// Offsets/Bytes is the dictionary arena in StringColumn layout: entry c
	// is Bytes[Offsets[c]:Offsets[c+1]], and entries ascend lexicographically.
	Offsets []int32
	Bytes   []byte
}

// NewDictColumn returns an empty dictionary column ready for appends.
func NewDictColumn() *DictColumn { return &DictColumn{Offsets: []int32{0}} }

// Type implements Column. The logical type stays String; the encoding is a
// storage-layer choice invisible to the schema.
func (c *DictColumn) Type() Type { return String }

// Len implements Column.
func (c *DictColumn) Len() int { return len(c.Codes) }

// Card returns the number of distinct dictionary entries.
func (c *DictColumn) Card() int { return len(c.Offsets) - 1 }

// DictValue returns dictionary entry code as a byte slice aliasing the arena.
func (c *DictColumn) DictValue(code int32) []byte {
	return c.Bytes[c.Offsets[code]:c.Offsets[code+1]]
}

// Value returns value i, decoded.
func (c *DictColumn) Value(i int) []byte { return c.DictValue(c.Codes[i]) }

// LowerBound returns the smallest code whose entry is >= v, or Card() when
// every entry is smaller. Valid because the dictionary is sorted.
func (c *DictColumn) LowerBound(v []byte) int32 {
	return int32(sort.Search(c.Card(), func(i int) bool {
		return bytes.Compare(c.DictValue(int32(i)), v) >= 0
	}))
}

// Code returns the code for value v and whether it is present.
func (c *DictColumn) Code(v []byte) (int32, bool) {
	lb := c.LowerBound(v)
	if int(lb) < c.Card() && bytes.Equal(c.DictValue(lb), v) {
		return lb, true
	}
	return 0, false
}

// insert adds v to the dictionary at its sorted position and returns its
// code, shifting arena bytes and re-numbering existing row codes at or above
// the insertion point. O(rows) per new distinct value — acceptable because
// dictionary columns are chosen exactly when distinct values are rare.
func (c *DictColumn) insert(v []byte) int32 {
	pos := c.LowerBound(v)
	off := int(c.Offsets[pos])
	old := len(c.Bytes)
	c.Bytes = append(c.Bytes, v...) // grow, then shift the tail right
	copy(c.Bytes[off+len(v):], c.Bytes[off:old])
	copy(c.Bytes[off:], v)
	c.Offsets = append(c.Offsets, 0)
	copy(c.Offsets[pos+1:], c.Offsets[pos:])
	for i := int(pos) + 1; i < len(c.Offsets); i++ {
		c.Offsets[i] += int32(len(v))
	}
	for i, code := range c.Codes {
		if code >= pos {
			c.Codes[i] = code + 1
		}
	}
	return pos
}

// Append adds one string value, extending the dictionary if it is new.
func (c *DictColumn) Append(v []byte) {
	code, ok := c.Code(v)
	if !ok {
		code = c.insert(v)
	}
	c.Codes = append(c.Codes, code)
}

// AppendString adds one string value given as a Go string.
func (c *DictColumn) AppendString(v string) { c.Append([]byte(v)) }

// AppendFrom implements Column. It accepts either string representation as
// the source, so dictionary-encoded and plain columns mix freely.
func (c *DictColumn) AppendFrom(src Column, i int) {
	c.Append(src.(StrCol).Value(i))
}

// EncodeStrings builds a sorted-dictionary encoding of col if its distinct
// count is at most maxCard, returning (nil, false) otherwise. The distinct
// scan aborts as soon as the threshold is exceeded, so probing a
// high-cardinality column costs one pass over at most maxCard+1 distinct
// values' worth of map fills.
func EncodeStrings(col *StringColumn, maxCard int) (*DictColumn, bool) {
	distinct := make(map[string]struct{}, maxCard)
	n := col.Len()
	for i := 0; i < n; i++ {
		v := col.Value(i)
		if _, ok := distinct[string(v)]; !ok {
			if len(distinct) == maxCard {
				return nil, false
			}
			distinct[string(v)] = struct{}{}
		}
	}
	vals := make([]string, 0, len(distinct))
	for v := range distinct {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	d := &DictColumn{
		Codes:   make([]int32, 0, n),
		Offsets: make([]int32, 1, len(vals)+1),
	}
	codeOf := make(map[string]int32, len(vals))
	for i, v := range vals {
		d.Bytes = append(d.Bytes, v...)
		d.Offsets = append(d.Offsets, int32(len(d.Bytes)))
		codeOf[v] = int32(i)
	}
	for i := 0; i < n; i++ {
		d.Codes = append(d.Codes, codeOf[string(col.Value(i))])
	}
	return d, true
}

// DictEncode replaces every plain string column whose distinct count is at
// most maxCard with its dictionary encoding, returning the names of the
// columns converted. Run it once after bulk load; appending afterwards still
// works (the dictionary grows in place).
func (t *Table) DictEncode(maxCard int) []string {
	var converted []string
	for i, c := range t.Cols {
		sc, ok := c.(*StringColumn)
		if !ok {
			continue
		}
		if d, ok := EncodeStrings(sc, maxCard); ok {
			t.Cols[i] = d
			converted = append(converted, t.Schema.Cols[i].Name)
		}
	}
	if len(converted) > 0 {
		t.invalidateZones()
	}
	return converted
}
