package storage

import (
	"fmt"
	"testing"
)

// TestDictColumnRoundTrip appends values through the dictionary column and
// checks that decode matches, the dictionary stays sorted, and codes map
// back through Code/LowerBound.
func TestDictColumnRoundTrip(t *testing.T) {
	vals := []string{"MAIL", "AIR", "TRUCK", "AIR", "SHIP", "MAIL", "AIR", "RAIL", "FOB"}
	d := NewDictColumn()
	for _, v := range vals {
		d.AppendString(v)
	}
	if d.Len() != len(vals) {
		t.Fatalf("len %d, want %d", d.Len(), len(vals))
	}
	for i, v := range vals {
		if got := string(d.Value(i)); got != v {
			t.Fatalf("row %d decodes to %q, want %q", i, got, v)
		}
	}
	if d.Card() != 6 {
		t.Fatalf("card %d, want 6", d.Card())
	}
	// Sorted-dictionary invariant: codes ascend with byte order.
	for c := 1; c < d.Card(); c++ {
		if string(d.DictValue(int32(c-1))) >= string(d.DictValue(int32(c))) {
			t.Fatalf("dictionary not sorted at %d: %q >= %q",
				c, d.DictValue(int32(c-1)), d.DictValue(int32(c)))
		}
	}
	for _, v := range vals {
		code, ok := d.Code([]byte(v))
		if !ok {
			t.Fatalf("Code(%q) not found", v)
		}
		if got := string(d.DictValue(code)); got != v {
			t.Fatalf("Code(%q) -> %d -> %q", v, code, got)
		}
	}
	if _, ok := d.Code([]byte("ABSENT")); ok {
		t.Fatal("Code found a value never appended")
	}
	if lb := d.LowerBound([]byte("")); lb != 0 {
		t.Fatalf("LowerBound(\"\") = %d, want 0", lb)
	}
	if lb := d.LowerBound([]byte("ZZZ")); int(lb) != d.Card() {
		t.Fatalf("LowerBound past end = %d, want %d", lb, d.Card())
	}
}

// TestDictColumnAppendRecode exercises the O(n) re-code path: appending a
// value that sorts before existing entries must shift every live code.
func TestDictColumnAppendRecode(t *testing.T) {
	d := NewDictColumn()
	d.AppendString("M")
	d.AppendString("Z")
	d.AppendString("M")
	// "A" sorts before both existing entries: codes for M and Z shift up.
	d.AppendString("A")
	want := []string{"M", "Z", "M", "A"}
	for i, w := range want {
		if got := string(d.Value(i)); got != w {
			t.Fatalf("after recode, row %d = %q, want %q", i, got, w)
		}
	}
	wantCodes := []int32{1, 2, 1, 0}
	for i, w := range wantCodes {
		if d.Codes[i] != w {
			t.Fatalf("code[%d] = %d, want %d", i, d.Codes[i], w)
		}
	}
}

// TestDictColumnAppendFrom checks AppendFrom across both string
// representations.
func TestDictColumnAppendFrom(t *testing.T) {
	src := NewStringColumn()
	src.AppendString("b")
	src.AppendString("a")
	d := NewDictColumn()
	d.AppendFrom(src, 0)
	d.AppendFrom(src, 1)
	if string(d.Value(0)) != "b" || string(d.Value(1)) != "a" {
		t.Fatalf("AppendFrom(StringColumn) decoded %q,%q", d.Value(0), d.Value(1))
	}
	// And the reverse: a plain column appending from a dictionary column.
	s2 := NewStringColumn()
	s2.AppendFrom(d, 0)
	if string(s2.Value(0)) != "b" {
		t.Fatalf("StringColumn.AppendFrom(DictColumn) = %q", s2.Value(0))
	}
	// Dict from dict.
	d2 := NewDictColumn()
	d2.AppendFrom(d, 1)
	if string(d2.Value(0)) != "a" {
		t.Fatalf("DictColumn.AppendFrom(DictColumn) = %q", d2.Value(0))
	}
}

// TestEncodeStrings checks the bulk encoder and its cardinality abort.
func TestEncodeStrings(t *testing.T) {
	col := NewStringColumn()
	for i := 0; i < 1000; i++ {
		col.AppendString(fmt.Sprintf("v%02d", i%7))
	}
	d, ok := EncodeStrings(col, 8)
	if !ok {
		t.Fatal("EncodeStrings rejected a 7-value column at maxCard 8")
	}
	if d.Card() != 7 {
		t.Fatalf("card %d, want 7", d.Card())
	}
	for i := 0; i < col.Len(); i++ {
		if string(d.Value(i)) != string(col.Value(i)) {
			t.Fatalf("row %d: %q != %q", i, d.Value(i), col.Value(i))
		}
	}
	if _, ok := EncodeStrings(col, 6); ok {
		t.Fatal("EncodeStrings accepted a 7-value column at maxCard 6")
	}
}

// TestTableDictEncode checks the post-load conversion pass and that the
// generic StringCol accessor serves both representations.
func TestTableDictEncode(t *testing.T) {
	schema := NewSchema(
		ColumnDef{Name: "low", Type: String, StrCap: 8},
		ColumnDef{Name: "high", Type: String, StrCap: 8},
		ColumnDef{Name: "k", Type: Int64},
	)
	tb := NewTable("t", schema, 100)
	for i := 0; i < 100; i++ {
		tb.StringCol("low").AppendString(fmt.Sprintf("s%d", i%3))
		tb.StringCol("high").AppendString(fmt.Sprintf("u%03d", i))
		tb.Cols[2].(*Int64Column).Values = append(tb.Cols[2].(*Int64Column).Values, int64(i))
	}
	converted := tb.DictEncode(10)
	if len(converted) != 1 || converted[0] != "low" {
		t.Fatalf("converted %v, want [low]", converted)
	}
	if _, ok := tb.ColByName("low").(*DictColumn); !ok {
		t.Fatal("low not dictionary-encoded")
	}
	if _, ok := tb.ColByName("high").(*StringColumn); !ok {
		t.Fatal("high should stay a plain string column")
	}
	if err := tb.Validate(); err != nil {
		t.Fatalf("Validate after DictEncode: %v", err)
	}
	for i := 0; i < 100; i++ {
		if got, want := string(tb.StringCol("low").Value(i)), fmt.Sprintf("s%d", i%3); got != want {
			t.Fatalf("row %d: %q, want %q", i, got, want)
		}
	}
}
