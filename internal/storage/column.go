package storage

import "fmt"

// Column is a typed value array. Concrete columns expose their backing
// slices directly so scans and late loads are plain slice indexing.
type Column interface {
	Type() Type
	Len() int
	// AppendFrom appends row i of src (which must be the same concrete
	// type) to this column. Used by result materialization and tests.
	AppendFrom(src Column, i int)
}

// Int64Column backs Int64, Date and Bool columns.
type Int64Column struct{ Values []int64 }

// Type implements Column.
func (c *Int64Column) Type() Type { return Int64 }

// Len implements Column.
func (c *Int64Column) Len() int { return len(c.Values) }

// AppendFrom implements Column.
func (c *Int64Column) AppendFrom(src Column, i int) {
	c.Values = append(c.Values, src.(*Int64Column).Values[i])
}

// Int32Column backs Int32 columns.
type Int32Column struct{ Values []int32 }

// Type implements Column.
func (c *Int32Column) Type() Type { return Int32 }

// Len implements Column.
func (c *Int32Column) Len() int { return len(c.Values) }

// AppendFrom implements Column.
func (c *Int32Column) AppendFrom(src Column, i int) {
	c.Values = append(c.Values, src.(*Int32Column).Values[i])
}

// Float64Column backs Float64 columns.
type Float64Column struct{ Values []float64 }

// Type implements Column.
func (c *Float64Column) Type() Type { return Float64 }

// Len implements Column.
func (c *Float64Column) Len() int { return len(c.Values) }

// AppendFrom implements Column.
func (c *Float64Column) AppendFrom(src Column, i int) {
	c.Values = append(c.Values, src.(*Float64Column).Values[i])
}

// StringColumn stores strings as a shared byte arena plus offsets, the usual
// columnar layout: value i is Bytes[Offsets[i]:Offsets[i+1]].
type StringColumn struct {
	Offsets []int32
	Bytes   []byte
}

// NewStringColumn returns an empty string column ready for appends.
func NewStringColumn() *StringColumn { return &StringColumn{Offsets: []int32{0}} }

// Type implements Column.
func (c *StringColumn) Type() Type { return String }

// Len implements Column.
func (c *StringColumn) Len() int { return len(c.Offsets) - 1 }

// Value returns value i as a byte slice aliasing the arena.
func (c *StringColumn) Value(i int) []byte {
	return c.Bytes[c.Offsets[i]:c.Offsets[i+1]]
}

// Append adds one string value.
func (c *StringColumn) Append(v []byte) {
	c.Bytes = append(c.Bytes, v...)
	c.Offsets = append(c.Offsets, int32(len(c.Bytes)))
}

// AppendString adds one string value given as a Go string.
func (c *StringColumn) AppendString(v string) {
	c.Bytes = append(c.Bytes, v...)
	c.Offsets = append(c.Offsets, int32(len(c.Bytes)))
}

// AppendFrom implements Column. It accepts either string representation as
// the source, so dictionary-encoded and plain columns mix freely.
func (c *StringColumn) AppendFrom(src Column, i int) {
	c.Append(src.(StrCol).Value(i))
}

// NewColumn allocates an empty column of the given type with capacity hint n.
func NewColumn(t Type, n int) Column {
	switch t {
	case Int64, Date, Bool:
		return &Int64Column{Values: make([]int64, 0, n)}
	case Int32:
		return &Int32Column{Values: make([]int32, 0, n)}
	case Float64:
		return &Float64Column{Values: make([]float64, 0, n)}
	case String:
		sc := &StringColumn{Offsets: make([]int32, 1, n+1)}
		return sc
	}
	panic(fmt.Sprintf("storage: cannot allocate column of type %v", t))
}
