package storage

import (
	"math/rand"
	"testing"
)

// TestZoneMapInvariant checks the defining property on random data: every
// row's value lies within its block's [min, max], for every supported
// column kind.
func TestZoneMapInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n, block = 10_000, 256

	ic := &Int64Column{}
	fc := &Float64Column{}
	dc := NewDictColumn()
	mods := []string{"AIR", "FOB", "MAIL", "RAIL", "SHIP", "TRUCK"}
	for i := 0; i < n; i++ {
		ic.Values = append(ic.Values, r.Int63n(1_000_000)-500_000)
		fc.Values = append(fc.Values, r.Float64()*100-50)
		dc.AppendString(mods[r.Intn(len(mods))])
	}

	zi := BuildZoneMap(ic, block)
	zf := BuildZoneMap(fc, block)
	zd := BuildZoneMap(dc, block)
	if zi == nil || zf == nil || zd == nil {
		t.Fatal("zone map missing for a supported column kind")
	}
	for i := 0; i < n; i++ {
		b := i / block
		if v := ic.Values[i]; v < zi.MinI[b] || v > zi.MaxI[b] {
			t.Fatalf("int row %d value %d outside zone [%d, %d]", i, v, zi.MinI[b], zi.MaxI[b])
		}
		if v := fc.Values[i]; v < zf.MinF[b] || v > zf.MaxF[b] {
			t.Fatalf("float row %d value %g outside zone [%g, %g]", i, v, zf.MinF[b], zf.MaxF[b])
		}
		if c := int64(dc.Codes[i]); c < zd.MinI[b] || c > zd.MaxI[b] {
			t.Fatalf("dict row %d code %d outside zone [%d, %d]", i, c, zd.MinI[b], zd.MaxI[b])
		}
	}

	// Plain string columns have no zone map.
	sc := NewStringColumn()
	sc.AppendString("x")
	if BuildZoneMap(sc, block) != nil {
		t.Fatal("plain string column should have no zone map")
	}
}

// TestZoneMapOverlap checks the block/predicate intersection tests.
func TestZoneMapOverlap(t *testing.T) {
	z := &ZoneMap{Block: 4, MinI: []int64{10}, MaxI: []int64{20}}
	cases := []struct {
		lo, hi int64
		want   bool
	}{
		{0, 9, false}, {0, 10, true}, {15, 15, true}, {20, 99, true}, {21, 99, false},
	}
	for _, c := range cases {
		if got := z.OverlapsI(0, c.lo, c.hi); got != c.want {
			t.Fatalf("OverlapsI [%d,%d] = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
	zf := &ZoneMap{Block: 4, MinF: []float64{1.5}, MaxF: []float64{2.5}}
	if zf.OverlapsF(0, 2.5, 99, true, false) {
		t.Fatal("strict lower bound at block max should not overlap")
	}
	if !zf.OverlapsF(0, 2.5, 99, false, false) {
		t.Fatal("closed lower bound at block max should overlap")
	}
	if zf.OverlapsF(0, -99, 1.5, false, true) {
		t.Fatal("strict upper bound at block min should not overlap")
	}
	if !zf.OverlapsF(0, -99, 1.5, false, false) {
		t.Fatal("closed upper bound at block min should overlap")
	}
}

// TestTableZoneMapCache checks caching and invalidation on append and on
// DictEncode.
func TestTableZoneMapCache(t *testing.T) {
	schema := NewSchema(ColumnDef{Name: "k", Type: Int64})
	tb := NewTable("t", schema, 8)
	col := tb.Cols[0].(*Int64Column)
	col.Values = append(col.Values, 1, 2, 3, 4)

	z1 := tb.ZoneMap(0, 2)
	if z1 == nil || len(z1.MinI) != 2 {
		t.Fatalf("zone map blocks %v", z1)
	}
	if z2 := tb.ZoneMap(0, 2); z2 != z1 {
		t.Fatal("unchanged column should return the cached zone map")
	}
	col.Values = append(col.Values, 99)
	z3 := tb.ZoneMap(0, 2)
	if z3 == z1 {
		t.Fatal("append must invalidate the cached zone map")
	}
	if len(z3.MinI) != 3 || z3.MaxI[2] != 99 {
		t.Fatalf("rebuilt zone map wrong: %+v", z3)
	}
}
