package storage

// Pager is the paged backing a disk-resident table installs on Table.Pager:
// the hook through which scans pin the buffer-pool pages behind the rows
// they are about to touch. Implementations (internal/colstore) verify page
// checksums on first touch, account resident bytes against the pool budget,
// and keep pinned pages safe from eviction until the release function runs.
//
// Pinning is an accounting and integrity protocol, not a correctness
// requirement: a paged column's backing slices always read valid file bytes
// through the mapping, so code paths that skip pinning (zone-map rebuilds,
// ad-hoc column access in tests) stay correct — they merely bypass checksum
// verification and residency accounting.
type Pager interface {
	// PinRange pins the pages backing rows [start, end) of the given
	// storage columns. The release function must be called exactly once;
	// on error nothing stays pinned and release is nil.
	PinRange(cols []int, start, end int) (release func(), err error)
	// PinRows pins the pages backing the individual rows ids of the given
	// storage columns — the late-materialization gather path. Same
	// contract as PinRange.
	PinRows(cols []int, ids []int64) (release func(), err error)
}

// PagerStats is the counter snapshot a stats-capable pager exposes; the
// executor reports the delta observed during a query (the pool may be
// shared across tables and queries, so deltas include concurrent traffic).
type PagerStats struct {
	Pins          int64
	Hits          int64
	Misses        int64
	Evictions     int64
	ResidentBytes int64
}

// StatsPager is a Pager that can report buffer-pool counters.
type StatsPager interface {
	Pager
	PagerStats() PagerStats
}
