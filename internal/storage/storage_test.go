package storage

import (
	"testing"
	"testing/quick"
)

func TestTypeWidths(t *testing.T) {
	cases := []struct {
		typ    Type
		strCap int
		want   int
	}{
		{Int64, 0, 8},
		{Int32, 0, 4},
		{Float64, 0, 8},
		{Date, 0, 8},
		{Bool, 0, 8},
		{String, 1, 4}, // 1 length byte + 1 cap, rounded to 4
		{String, 3, 4}, // 1 + 3 = 4
		{String, 4, 8}, // 1 + 4 = 5 -> 8
		{String, 25, 28},
	}
	for _, c := range cases {
		if got := c.typ.Width(c.strCap); got != c.want {
			t.Errorf("%v.Width(%d) = %d, want %d", c.typ, c.strCap, got, c.want)
		}
	}
}

func TestColumnsRoundTrip(t *testing.T) {
	s := NewSchema(
		ColumnDef{Name: "a", Type: Int64},
		ColumnDef{Name: "b", Type: Int32},
		ColumnDef{Name: "c", Type: Float64},
		ColumnDef{Name: "d", Type: String, StrCap: 8},
	)
	tb := NewTable("t", s, 4)
	tb.Int64Col("a")
	tb.Cols[0].(*Int64Column).Values = append(tb.Cols[0].(*Int64Column).Values, 1, 2)
	tb.Cols[1].(*Int32Column).Values = append(tb.Cols[1].(*Int32Column).Values, 3, 4)
	tb.Cols[2].(*Float64Column).Values = append(tb.Cols[2].(*Float64Column).Values, 0.5, 1.5)
	sc := tb.Cols[3].(*StringColumn)
	sc.AppendString("x")
	sc.AppendString("hello")
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if string(tb.StringCol("d").Value(1)) != "hello" {
		t.Fatalf("string round trip failed: %q", tb.StringCol("d").Value(1))
	}
	if tb.Int32Col("b")[1] != 4 {
		t.Fatal("int32 round trip failed")
	}
}

func TestValidateCatchesRaggedColumns(t *testing.T) {
	s := NewSchema(ColumnDef{Name: "a", Type: Int64}, ColumnDef{Name: "b", Type: Int64})
	tb := NewTable("t", s, 2)
	tb.Cols[0].(*Int64Column).Values = append(tb.Cols[0].(*Int64Column).Values, 1, 2)
	tb.Cols[1].(*Int64Column).Values = append(tb.Cols[1].(*Int64Column).Values, 1)
	if err := tb.Validate(); err == nil {
		t.Fatal("ragged table passed validation")
	}
}

func TestAppendFrom(t *testing.T) {
	src := &StringColumn{Offsets: []int32{0}}
	src.AppendString("alpha")
	src.AppendString("beta")
	dst := NewStringColumn()
	dst.AppendFrom(src, 1)
	if string(dst.Value(0)) != "beta" {
		t.Fatalf("AppendFrom copied %q", dst.Value(0))
	}
}

func TestMorselsCoverAllRows(t *testing.T) {
	check := func(n uint16, size uint8) bool {
		rows := int(n)
		ms := Morsels(rows, int(size))
		covered := 0
		prevEnd := 0
		for _, m := range ms {
			if m.Start != prevEnd || m.End <= m.Start {
				return false
			}
			covered += m.End - m.Start
			prevEnd = m.End
		}
		return covered == rows
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMorselsEmptyTable(t *testing.T) {
	if got := Morsels(0, 0); len(got) != 0 {
		t.Fatalf("empty table produced %d morsels", len(got))
	}
}

func TestByteSizeAccountsEverything(t *testing.T) {
	s := NewSchema(ColumnDef{Name: "a", Type: Int64}, ColumnDef{Name: "s", Type: String, StrCap: 10})
	tb := NewTable("t", s, 2)
	tb.Cols[0].(*Int64Column).Values = append(tb.Cols[0].(*Int64Column).Values, 1, 2)
	sc := tb.Cols[1].(*StringColumn)
	sc.AppendString("ab")
	sc.AppendString("cde")
	// 2*8 bytes ints + 5 string bytes + 3 offsets * 4.
	if got := tb.ByteSize(); got != 16+5+12 {
		t.Fatalf("ByteSize = %d", got)
	}
}

func TestSchemaLookups(t *testing.T) {
	s := NewSchema(ColumnDef{Name: "x", Type: Int64})
	if s.ColIndex("x") != 0 || s.ColIndex("y") != -1 {
		t.Fatal("ColIndex broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCol on missing column did not panic")
		}
	}()
	s.MustCol("missing")
}
