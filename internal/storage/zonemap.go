package storage

// ZoneMap summarizes one column in fixed-size row blocks: block b covers rows
// [b*Block, min((b+1)*Block, rows)) and records the min and max value seen in
// that range. Scans consult it to skip whole morsels and whole batches whose
// value range provably misses a pushed predicate; the planner consults it to
// tighten cardinality ceilings (a pruned block contributes exactly zero
// rows, so subtracting it can never under-estimate).
//
// Integer-family columns (Int64/Date/Bool, Int32, and dictionary codes) fill
// the I lanes; Float64 columns fill the F lanes. Plain string columns have no
// zone map — their pushed predicates still prefilter rows, just without
// block skipping.
type ZoneMap struct {
	Block      int
	MinI, MaxI []int64
	MinF, MaxF []float64
}

// NumBlocks returns the number of summarized blocks.
func (z *ZoneMap) NumBlocks() int {
	if len(z.MinI) > 0 {
		return len(z.MinI)
	}
	return len(z.MinF)
}

// OverlapsI reports whether block b may contain a value in [lo, hi].
func (z *ZoneMap) OverlapsI(b int, lo, hi int64) bool {
	return lo <= z.MaxI[b] && z.MinI[b] <= hi
}

// OverlapsF reports whether block b may contain a value in the float interval
// with the given bounds; loOpen/hiOpen exclude the endpoint.
func (z *ZoneMap) OverlapsF(b int, lo, hi float64, loOpen, hiOpen bool) bool {
	if loOpen {
		if !(lo < z.MaxF[b]) {
			return false
		}
	} else if !(lo <= z.MaxF[b]) {
		return false
	}
	if hiOpen {
		return z.MinF[b] < hi
	}
	return z.MinF[b] <= hi
}

// BuildZoneMap summarizes c in blocks of the given row count. Returns nil for
// column kinds without a usable value order (plain string arenas).
func BuildZoneMap(c Column, block int) *ZoneMap {
	n := c.Len()
	nb := (n + block - 1) / block
	z := &ZoneMap{Block: block}
	minmaxI := func(at func(i int) int64) {
		z.MinI = make([]int64, nb)
		z.MaxI = make([]int64, nb)
		for b := 0; b < nb; b++ {
			start, end := b*block, (b+1)*block
			if end > n {
				end = n
			}
			lo, hi := at(start), at(start)
			for i := start + 1; i < end; i++ {
				v := at(i)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			z.MinI[b], z.MaxI[b] = lo, hi
		}
	}
	switch col := c.(type) {
	case *Int64Column:
		minmaxI(func(i int) int64 { return col.Values[i] })
	case *Int32Column:
		minmaxI(func(i int) int64 { return int64(col.Values[i]) })
	case *DictColumn:
		minmaxI(func(i int) int64 { return int64(col.Codes[i]) })
	case *Float64Column:
		z.MinF = make([]float64, nb)
		z.MaxF = make([]float64, nb)
		for b := 0; b < nb; b++ {
			start, end := b*block, (b+1)*block
			if end > n {
				end = n
			}
			lo, hi := col.Values[start], col.Values[start]
			for i := start + 1; i < end; i++ {
				v := col.Values[i]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			z.MinF[b], z.MaxF[b] = lo, hi
		}
	default:
		return nil
	}
	return z
}

type zoneKey struct{ col, block int }

type zoneEntry struct {
	rows int // column length when built; a mismatch invalidates the entry
	zm   *ZoneMap
}

// ZoneMap returns the cached zone map for column ci at the given block size,
// building it on first use. Entries are invalidated when the column length
// changes (every mutation path appends rows) and by DictEncode (which swaps
// the column representation, renumbering codes). Returns nil for columns
// without zone-map support. Safe for concurrent use.
func (t *Table) ZoneMap(ci, block int) *ZoneMap {
	t.zmu.Lock()
	defer t.zmu.Unlock()
	if t.zones == nil {
		t.zones = make(map[zoneKey]*zoneEntry)
	}
	key := zoneKey{ci, block}
	c := t.Cols[ci]
	if e, ok := t.zones[key]; ok && e.rows == c.Len() {
		return e.zm
	}
	e := &zoneEntry{rows: c.Len(), zm: BuildZoneMap(c, block)}
	t.zones[key] = e
	return e.zm
}

// SeedZoneMap installs a prebuilt zone map for column ci at the given block
// size — the persistence path: a column store that serialized zone maps
// alongside its segments seeds them here at open, so pruning works without
// ever touching data pages. The entry is tagged with the column's current
// length, so later appends invalidate it exactly like a built entry, and
// DictEncode's invalidateZones drops it with the rest.
func (t *Table) SeedZoneMap(ci, block int, zm *ZoneMap) {
	t.zmu.Lock()
	defer t.zmu.Unlock()
	if t.zones == nil {
		t.zones = make(map[zoneKey]*zoneEntry)
	}
	t.zones[zoneKey{ci, block}] = &zoneEntry{rows: t.Cols[ci].Len(), zm: zm}
}

// invalidateZones drops all cached zone maps; called when a column's
// representation changes without changing its length.
func (t *Table) invalidateZones() {
	t.zmu.Lock()
	t.zones = nil
	t.zmu.Unlock()
}
