// Package storage implements the column-wise main-memory table storage of the
// DBMS substrate. Relations are stored one typed array per column (Section
// 4.2 of the paper: "Umbra stores relations column-wise in main memory");
// scans read only the required columns and stitch them into tuples that flow
// through the pipelines.
package storage

import "fmt"

// Type is the physical type of a column.
type Type uint8

const (
	// Int64 is an 8-byte signed integer. Decimals are stored as scaled
	// int64 (cents), dates as days since 1970-01-01, booleans as 0/1.
	Int64 Type = iota
	// Int32 is a 4-byte signed integer, used by workload B of Balkesen et
	// al. where key and payload are 4 bytes each (Table 1).
	Int32
	// Float64 is an 8-byte IEEE float.
	Float64
	// String is a variable-length byte string with a declared maximum
	// width; joins materialize it inline at its declared capacity so that
	// wide payloads cost what they cost in the paper.
	String
	// Date is an Int64 in days since the Unix epoch; kept as a separate
	// logical type for schema readability.
	Date
	// Bool is an Int64 restricted to 0/1 (mark-join output).
	Bool
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Int64:
		return "INT64"
	case Int32:
		return "INT32"
	case Float64:
		return "FLOAT64"
	case String:
		return "STRING"
	case Date:
		return "DATE"
	case Bool:
		return "BOOL"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Width reports the number of bytes one value of this type occupies when a
// join materializes it into a row. strCap is the declared string capacity.
func (t Type) Width(strCap int) int {
	switch t {
	case Int32:
		return 4
	case String:
		// Length byte plus capacity, rounded up to 4-byte slots.
		return (strCap + 1 + 3) &^ 3
	default:
		return 8
	}
}

// IsNumeric reports whether values of the type flow through the I64/F64
// lanes of a vector.
func (t Type) IsNumeric() bool { return t != String }

// ColumnDef describes one column of a schema.
type ColumnDef struct {
	Name string
	Type Type
	// StrCap is the declared maximum byte length for String columns
	// (e.g. 25 for CHAR(25)); ignored for other types.
	StrCap int
}

// Schema is an ordered list of column definitions.
type Schema struct {
	Cols []ColumnDef
}

// NewSchema builds a schema from column definitions.
func NewSchema(cols ...ColumnDef) Schema { return Schema{Cols: cols} }

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustCol returns the position of the named column and panics if absent.
// Plan construction is programmer-driven, so a missing column is a bug.
func (s Schema) MustCol(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic("storage: unknown column " + name)
	}
	return i
}
