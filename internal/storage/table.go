package storage

import (
	"fmt"
	"sync"
)

// Table is a named relation: a schema plus one column per definition. All
// columns have equal length. Tables must not be copied once ZoneMap has been
// called (the cache carries a mutex); they are shared by pointer everywhere.
type Table struct {
	Name   string
	Schema Schema
	Cols   []Column

	// Pager, when non-nil, is the table's paged backing: its column value
	// arrays alias disk pages managed by a buffer pool, and scans pin the
	// pages behind each morsel before touching them (see Pager). RAM
	// resident tables leave it nil and every access path is unchanged.
	Pager Pager

	zmu   sync.Mutex
	zones map[zoneKey]*zoneEntry
}

// NewTable allocates an empty table for the schema with capacity hint n rows.
func NewTable(name string, schema Schema, n int) *Table {
	t := &Table{Name: name, Schema: schema, Cols: make([]Column, len(schema.Cols))}
	for i, c := range schema.Cols {
		t.Cols[i] = NewColumn(physical(c.Type), n)
	}
	return t
}

// physical maps logical types to the backing column kind.
func physical(t Type) Type {
	switch t {
	case Date, Bool:
		return Int64
	default:
		return t
	}
}

// NumRows returns the number of rows in the table.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// Col returns the column at position i.
func (t *Table) Col(i int) Column { return t.Cols[i] }

// ColByName returns the named column or panics; table wiring is static.
func (t *Table) ColByName(name string) Column {
	return t.Cols[t.Schema.MustCol(name)]
}

// Int64Col returns the named column's int64 values.
func (t *Table) Int64Col(name string) []int64 {
	return t.ColByName(name).(*Int64Column).Values
}

// Int32Col returns the named column's int32 values.
func (t *Table) Int32Col(name string) []int32 {
	return t.ColByName(name).(*Int32Column).Values
}

// Float64Col returns the named column's float64 values.
func (t *Table) Float64Col(name string) []float64 {
	return t.ColByName(name).(*Float64Column).Values
}

// StringCol returns the named string column in either representation (plain
// arena or dictionary-encoded).
func (t *Table) StringCol(name string) StrCol {
	return t.ColByName(name).(StrCol)
}

// Validate checks that all columns have the same length and compatible types.
func (t *Table) Validate() error {
	n := t.NumRows()
	for i, c := range t.Cols {
		if c.Len() != n {
			return fmt.Errorf("table %s: column %s has %d rows, want %d",
				t.Name, t.Schema.Cols[i].Name, c.Len(), n)
		}
		if c.Type() != physical(t.Schema.Cols[i].Type) {
			return fmt.Errorf("table %s: column %s is %v, schema says %v",
				t.Name, t.Schema.Cols[i].Name, c.Type(), t.Schema.Cols[i].Type)
		}
	}
	return nil
}

// ByteSize estimates the in-memory payload size of the table: the sum of the
// value arrays, which is what scans and joins actually move.
func (t *Table) ByteSize() int64 {
	var total int64
	for _, c := range t.Cols {
		switch col := c.(type) {
		case *Int64Column:
			total += int64(len(col.Values)) * 8
		case *Int32Column:
			total += int64(len(col.Values)) * 4
		case *Float64Column:
			total += int64(len(col.Values)) * 8
		case *StringColumn:
			total += int64(len(col.Bytes)) + int64(len(col.Offsets))*4
		case *DictColumn:
			total += int64(len(col.Codes))*4 +
				int64(len(col.Bytes)) + int64(len(col.Offsets))*4
		}
	}
	return total
}

// Morsel is a contiguous row range [Start, End) of a table; the unit of
// work distribution in morsel-driven parallelism (Leis et al.).
type Morsel struct {
	Start, End int
}

// MorselSize is the default number of rows per morsel. The paper's system
// uses morsels sized to keep scheduling overhead negligible while enabling
// work stealing; 64Ki rows keeps the same balance here.
const MorselSize = 1 << 16

// Morsels splits n rows into morsels of the given size (0 = MorselSize).
func Morsels(n, size int) []Morsel {
	if size <= 0 {
		size = MorselSize
	}
	ms := make([]Morsel, 0, n/size+1)
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		ms = append(ms, Morsel{Start: start, End: end})
	}
	return ms
}
