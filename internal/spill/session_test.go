package spill

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSessionParentLifecycle(t *testing.T) {
	parent := t.TempDir()
	dir, err := SessionParent(parent, "s1")
	if err != nil {
		t.Fatalf("SessionParent: %v", err)
	}
	if filepath.Base(dir) != "sess-s1" {
		t.Fatalf("session dir = %s, want sess-s1", dir)
	}
	if _, err := os.Stat(filepath.Join(dir, ownerFile)); err != nil {
		t.Fatalf("owner marker missing: %v", err)
	}
	// Idempotent: a second call reuses the directory.
	again, err := SessionParent(parent, "s1")
	if err != nil || again != dir {
		t.Fatalf("second SessionParent = %s, %v", again, err)
	}

	// A query spill dir nests inside and is reclaimed with the parent.
	qd, err := NewDir(dir)
	if err != nil {
		t.Fatalf("NewDir under session: %v", err)
	}
	if err := RemoveSessionParent(dir); err != nil {
		t.Fatalf("RemoveSessionParent: %v", err)
	}
	if _, err := os.Stat(qd.Path()); !os.IsNotExist(err) {
		t.Fatalf("query spill dir survived session removal: %v", err)
	}
	// Missing directory is not an error.
	if err := RemoveSessionParent(dir); err != nil {
		t.Fatalf("repeat RemoveSessionParent: %v", err)
	}
}

func TestSessionParentRejectsBadInput(t *testing.T) {
	if _, err := SessionParent(t.TempDir(), ""); err == nil {
		t.Fatal("empty session id accepted")
	}
	if _, err := SessionParent(t.TempDir(), "../evil"); err == nil {
		t.Fatal("path traversal in session id accepted")
	}
	if err := RemoveSessionParent(filepath.Join(t.TempDir(), "not-a-session")); err == nil {
		t.Fatal("RemoveSessionParent accepted a non-session directory")
	}
}

// deadOwner overwrites a directory's owner marker with a pid that cannot be
// running (pid_max on Linux is bounded well below 1<<30).
func deadOwner(t *testing.T, dir string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, ownerFile), []byte("1073741823"), 0o600); err != nil {
		t.Fatalf("write dead owner: %v", err)
	}
}

func TestSweepSessionTrees(t *testing.T) {
	parent := t.TempDir()

	// A dead session: the whole tree goes.
	deadSess, err := SessionParent(parent, "dead")
	if err != nil {
		t.Fatalf("SessionParent: %v", err)
	}
	if _, err := NewDir(deadSess); err != nil {
		t.Fatalf("NewDir: %v", err)
	}
	deadOwner(t, deadSess)

	// A live session holding one live and one orphaned query dir: only the
	// orphan goes (recursive sweep).
	liveSess, err := SessionParent(parent, "live")
	if err != nil {
		t.Fatalf("SessionParent: %v", err)
	}
	liveQ, err := NewDir(liveSess)
	if err != nil {
		t.Fatalf("NewDir: %v", err)
	}
	orphanQ, err := NewDir(liveSess)
	if err != nil {
		t.Fatalf("NewDir: %v", err)
	}
	deadOwner(t, orphanQ.Path())

	// An unrelated directory must never be touched.
	bystander := filepath.Join(parent, "keep-me")
	if err := os.MkdirAll(bystander, 0o755); err != nil {
		t.Fatal(err)
	}

	removed, err := Sweep(parent)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	got := map[string]bool{}
	for _, r := range removed {
		got[r] = true
	}
	if !got[deadSess] || !got[orphanQ.Path()] || len(removed) != 2 {
		t.Fatalf("Sweep removed %v, want exactly [%s %s]", removed, deadSess, orphanQ.Path())
	}
	for _, keep := range []string{liveSess, liveQ.Path(), bystander} {
		if _, err := os.Stat(keep); err != nil {
			t.Fatalf("Sweep removed %s, which is live: %v", keep, err)
		}
	}
	// The live session dir's name still carries the prefix the janitor keys
	// on, so a daemon restart (same path, new pid) re-adopts it via
	// SessionParent rather than colliding.
	if !strings.HasPrefix(filepath.Base(liveSess), "sess-") {
		t.Fatalf("live session dir lost its prefix: %s", liveSess)
	}
}
