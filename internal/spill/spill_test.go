package spill

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"partitionjoin/internal/faultinject"
)

func newTestDir(t *testing.T) *Dir {
	t.Helper()
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Cleanup() })
	return d
}

func TestRoundTrip(t *testing.T) {
	d := newTestDir(t)
	f, err := d.File("run.build")
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{
		[]byte("hello spill"),
		make([]byte, 4096),
		[]byte{0xde, 0xad, 0xbe, 0xef},
	}
	for i := range frames[1] {
		frames[1][i] = byte(i * 7)
	}
	var rows int64
	for i, p := range frames {
		if err := f.Append(p, i+1); err != nil {
			t.Fatal(err)
		}
		rows += int64(i + 1)
	}
	if f.Frames() != len(frames) || f.Rows() != rows {
		t.Fatalf("frames=%d rows=%d, want %d and %d", f.Frames(), f.Rows(), len(frames), rows)
	}
	if f.MaxFrame() != 4096 {
		t.Fatalf("max frame = %d, want 4096", f.MaxFrame())
	}
	rd := f.NewReader()
	for i, want := range frames {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if string(got) != string(want) {
			t.Fatalf("frame %d payload mismatch", i)
		}
	}
	if _, err := rd.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("past last frame: err = %v, want io.EOF", err)
	}
}

func TestIndependentReaders(t *testing.T) {
	d := newTestDir(t)
	f, _ := d.File("run")
	for i := 0; i < 4; i++ {
		if err := f.Append([]byte{byte(i)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	next := func(r *Reader) byte {
		p, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		return p[0]
	}
	a, b := f.NewReader(), f.NewReader()
	pa, pa2 := next(a), next(a)
	pb := next(b)
	if pa != 0 || pa2 != 1 || pb != 0 {
		t.Fatalf("readers share a cursor: a=%d,%d b=%d", pa, pa2, pb)
	}
}

// On-disk damage after a clean write must be detected by the checksum and
// surface as an error naming file and frame — never as silent wrong data.
func TestOnDiskCorruptionDetected(t *testing.T) {
	d := newTestDir(t)
	f, _ := d.File("victim")
	if err := f.Append([]byte("first frame ok"), 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("second frame gets damaged"), 1); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit of frame 1 directly on disk.
	path := filepath.Join(d.Path(), "victim")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := frameHeaderSize + len("first frame ok") + frameHeaderSize + 3
	raw[off] ^= 0x01
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	rd := f.NewReader()
	if _, err := rd.Next(); err != nil {
		t.Fatalf("undamaged frame 0 failed: %v", err)
	}
	_, err = rd.Next()
	if err == nil {
		t.Fatal("corrupted frame read succeeded")
	}
	if !strings.Contains(err.Error(), "victim") || !strings.Contains(err.Error(), "frame 1") ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("error does not name file and frame: %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	d := newTestDir(t)
	f, _ := d.File("torn")
	if err := f.Append(make([]byte, 100), 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(make([]byte, 100), 1); err != nil {
		t.Fatal(err)
	}
	// Chop the second frame's payload off on disk (a torn write).
	if err := os.Truncate(filepath.Join(d.Path(), "torn"), frameHeaderSize+100+frameHeaderSize+40); err != nil {
		t.Fatal(err)
	}
	rd := f.NewReader()
	if _, err := rd.Next(); err != nil {
		t.Fatalf("intact frame: %v", err)
	}
	_, err := rd.Next()
	if err == nil {
		t.Fatal("torn tail read succeeded")
	}
	if !strings.Contains(err.Error(), "torn frame 1") {
		t.Fatalf("error does not name file and frame: %v", err)
	}
}

func TestCleanupRemovesDirAndIsIdempotent(t *testing.T) {
	parent := t.TempDir()
	d, err := NewDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := d.File("a")
	if err := f.Append([]byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	path := d.Path()
	if err := d.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("spill dir %s survived cleanup", path)
	}
	if err := d.Cleanup(); err != nil {
		t.Fatalf("second cleanup: %v", err)
	}
	if _, err := d.File("b"); err == nil {
		t.Fatal("File succeeded after cleanup")
	}
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("parent dir not empty after cleanup: %v", ents)
	}
	var nd *Dir
	if err := nd.Cleanup(); err != nil {
		t.Fatalf("nil dir cleanup: %v", err)
	}
}

func TestSweepRemovesStaleKeepsLive(t *testing.T) {
	parent := t.TempDir()

	// A live dir owned by this process: must survive the sweep.
	live, err := NewDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Cleanup()

	// A stale dir whose owner pid no longer exists (pids are far below
	// 1<<22 on Linux, and PID_MAX_LIMIT is 4 million).
	stale := filepath.Join(parent, "spill-stale1")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, ownerFile), []byte("8388607"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "run.0"), []byte("leftover"), 0o600); err != nil {
		t.Fatal(err)
	}

	// A crash before the owner marker was written: no marker, also stale.
	unmarked := filepath.Join(parent, "spill-unmarked")
	if err := os.MkdirAll(unmarked, 0o755); err != nil {
		t.Fatal(err)
	}

	// Unrelated entries must be untouched.
	other := filepath.Join(parent, "not-a-spill-dir")
	if err := os.MkdirAll(other, 0o755); err != nil {
		t.Fatal(err)
	}

	removed, err := Sweep(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v, want the two stale dirs", removed)
	}
	for _, dir := range []string{stale, unmarked} {
		if _, err := os.Stat(dir); !os.IsNotExist(err) {
			t.Fatalf("stale dir %s survived the sweep", dir)
		}
	}
	for _, dir := range []string{live.Path(), other} {
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("sweep removed %s: %v", dir, err)
		}
	}

	// The live dir must still work after the sweep.
	f, err := live.File("post")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("ok"), 1); err != nil {
		t.Fatal(err)
	}
}

func TestSweepMissingParentIsNoop(t *testing.T) {
	removed, err := Sweep(filepath.Join(t.TempDir(), "never-created"))
	if err != nil || len(removed) != 0 {
		t.Fatalf("sweep of missing parent: removed=%v err=%v", removed, err)
	}
}

func TestRemoveDetachesFile(t *testing.T) {
	d := newTestDir(t)
	f, _ := d.File("gone")
	if err := f.Append([]byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove(); err != nil {
		t.Fatal(err)
	}
	if d.NumFiles() != 0 {
		t.Fatalf("file still tracked after Remove")
	}
	if _, err := os.Stat(filepath.Join(d.Path(), "gone")); !os.IsNotExist(err) {
		t.Fatal("file still on disk after Remove")
	}
	// The name can be reused for a fresh run.
	if _, err := d.File("gone"); err != nil {
		t.Fatalf("recreate after remove: %v", err)
	}
}

func TestInjectedWriteFailure(t *testing.T) {
	faultinject.FailOnLeak(t)
	d := newTestDir(t)
	f, _ := d.File("w")
	faultinject.Arm(t, WriteSite, faultinject.Fault{Kind: faultinject.Fail, Message: "disk full"})
	err := f.Append([]byte("x"), 1)
	if err == nil {
		t.Fatal("append succeeded under injected write failure")
	}
	var inj *faultinject.Injected
	if !errors.As(err, &inj) || inj.Site != WriteSite {
		t.Fatalf("error %v does not carry the injected fault", err)
	}
	if !strings.Contains(err.Error(), "w frame 0") {
		t.Fatalf("error does not name file and frame: %v", err)
	}
}

func TestInjectedShortRead(t *testing.T) {
	faultinject.FailOnLeak(t)
	d := newTestDir(t)
	f, _ := d.File("r")
	if err := f.Append([]byte("payload"), 1); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(t, ReadSite, faultinject.Fault{Kind: faultinject.Fail, Message: "io error"})
	_, err := f.NewReader().Next()
	if err == nil || !strings.Contains(err.Error(), "short read") {
		t.Fatalf("want short-read error, got %v", err)
	}
	var inj *faultinject.Injected
	if !errors.As(err, &inj) || inj.Site != ReadSite {
		t.Fatalf("error %v does not carry the injected fault", err)
	}
}

func TestInjectedCorruptionCaughtByChecksum(t *testing.T) {
	faultinject.FailOnLeak(t)
	d := newTestDir(t)
	f, _ := d.File("c")
	payload := []byte("this frame is silently damaged on the way to disk")
	keep := append([]byte(nil), payload...)
	faultinject.Arm(t, CorruptSite, faultinject.Fault{Kind: faultinject.Fail, Once: true})
	if err := f.Append(payload, 1); err != nil {
		t.Fatalf("corruption must be silent at write time: %v", err)
	}
	if string(payload) != string(keep) {
		t.Fatal("caller's buffer was modified by the injected corruption")
	}
	_, err := f.NewReader().Next()
	if err == nil {
		t.Fatal("corrupted frame passed checksum verification")
	}
	if !strings.Contains(err.Error(), "checksum mismatch") || !strings.Contains(err.Error(), "frame 0") {
		t.Fatalf("error does not report the checksum failure: %v", err)
	}
	// A frame written after the Once fault expired reads back clean.
	if err := f.Append([]byte("clean"), 1); err != nil {
		t.Fatal(err)
	}
	rd := f.NewReader()
	if _, err := rd.Next(); err == nil {
		t.Fatal("frame 0 should still be damaged")
	}
}
