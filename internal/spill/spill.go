// Package spill implements the disk layer of the join engine's degradation
// ladder: checksummed, page-framed run files that radix partitions are
// evicted into when a query's working set exceeds its memory budget, and
// read back from one partition at a time during the join phase.
//
// A Dir owns one query's spill files as a private temp directory; Cleanup
// is idempotent and is deferred by the executor so the directory is removed
// on query end, cancellation, and panic alike. A File is an append-only
// sequence of frames, each a length-prefixed, CRC32-checksummed payload of
// whole packed rows. Corruption (bit rot, short writes, truncation) is
// detected on read and surfaced as an error naming the file and frame —
// a damaged spill file can fail a query but can never produce a wrong
// answer.
//
// Fault-injection sites cover the three disk failure modes: WriteSite fails
// an append, ReadSite simulates a short read, and CorruptSite flips a bit
// in a frame as it is written so the reader's checksum verification trips.
package spill

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"partitionjoin/internal/faultinject"
)

// Fault-injection sites of the spill layer.
const (
	// WriteSite fails File.Append with the injected error.
	WriteSite = "spill.write"
	// ReadSite makes Reader.Next report an injected short read.
	ReadSite = "spill.read"
	// CorruptSite flips one bit of a frame payload as it is written, so
	// the next read of that frame fails checksum verification.
	CorruptSite = "spill.corrupt"
)

var _ = faultinject.Register(WriteSite, ReadSite, CorruptSite)

// frameHeaderSize is the per-frame overhead: payload length u32, CRC32 u32.
const frameHeaderSize = 8

// Dir owns the spill files of one query inside a private temp directory.
type Dir struct {
	path string

	mu      sync.Mutex
	files   map[string]*File
	removed bool
}

// dirPrefix names every spill directory so the janitor can recognize them.
const dirPrefix = "spill-"

// ownerFile is the liveness marker inside each spill directory: the pid of
// the owning process. The janitor (Sweep) only removes directories whose
// owner is gone, so a crashed process's leftovers are reclaimed without
// ever touching a live query's files.
const ownerFile = "owner.pid"

// NewDir creates a fresh spill directory under parent ("" uses the system
// temp directory).
func NewDir(parent string) (*Dir, error) {
	if parent != "" {
		if err := os.MkdirAll(parent, 0o755); err != nil {
			return nil, fmt.Errorf("spill: create parent %s: %w", parent, err)
		}
	}
	path, err := os.MkdirTemp(parent, dirPrefix)
	if err != nil {
		return nil, fmt.Errorf("spill: create spill dir: %w", err)
	}
	pid := []byte(strconv.Itoa(os.Getpid()))
	if err := os.WriteFile(filepath.Join(path, ownerFile), pid, 0o600); err != nil {
		os.RemoveAll(path)
		return nil, fmt.Errorf("spill: write owner marker: %w", err)
	}
	return &Dir{path: path, files: make(map[string]*File)}, nil
}

// sessPrefix names per-session spill parents (SessionParent) so the janitor
// can recognize and recurse into them.
const sessPrefix = "sess-"

// CSTmpPrefix names the column store's background-write temp directories
// (internal/colstore writes a table into one, then renames it into place).
// A crash mid-write strands the directory; Sweep reaps it under the same
// owner.pid liveness rule as spill directories.
const CSTmpPrefix = "cstmp-"

// NewOwnedTempDir creates a fresh prefix-named temp directory under parent
// carrying this process's owner.pid liveness marker, so Sweep can reap it
// if the process dies before the caller renames or removes it. The colstore
// background writer stages table directories through it.
func NewOwnedTempDir(parent, prefix string) (string, error) {
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return "", fmt.Errorf("spill: create parent %s: %w", parent, err)
	}
	path, err := os.MkdirTemp(parent, prefix)
	if err != nil {
		return "", fmt.Errorf("spill: create temp dir: %w", err)
	}
	pid := []byte(strconv.Itoa(os.Getpid()))
	if err := os.WriteFile(filepath.Join(path, ownerFile), pid, 0o600); err != nil {
		os.RemoveAll(path)
		return "", fmt.Errorf("spill: write owner marker: %w", err)
	}
	return path, nil
}

// ReleaseOwnedTempDir removes the owner.pid marker from a NewOwnedTempDir
// directory, declaring the contents complete: the caller is about to rename
// the directory into its final place and the janitor must no longer
// consider it reapable.
func ReleaseOwnedTempDir(dir string) error {
	return os.Remove(filepath.Join(dir, ownerFile))
}

// SessionParent creates (or reuses) a per-session spill parent under parent:
// a directory named sess-<id> carrying this process's owner marker. Queries
// of the session use it as their Options.SpillDir, so each query's private
// spill-* directory nests inside it; removing the session parent reclaims
// every byte the session ever spilled in one call. Because it carries an
// owner marker, Sweep reclaims the whole session tree when the owning
// process crashes.
func SessionParent(parent, id string) (string, error) {
	if strings.ContainsAny(id, "/\\") || id == "" {
		return "", fmt.Errorf("spill: invalid session id %q", id)
	}
	dir := filepath.Join(parent, sessPrefix+id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("spill: create session dir %s: %w", dir, err)
	}
	pid := []byte(strconv.Itoa(os.Getpid()))
	if err := os.WriteFile(filepath.Join(dir, ownerFile), pid, 0o600); err != nil {
		os.RemoveAll(dir)
		return "", fmt.Errorf("spill: write owner marker: %w", err)
	}
	return dir, nil
}

// RemoveSessionParent deletes a session's spill parent and everything the
// session spilled beneath it. A missing directory is not an error.
func RemoveSessionParent(dir string) error {
	base := filepath.Base(dir)
	if !strings.HasPrefix(base, sessPrefix) {
		return fmt.Errorf("spill: %s is not a session spill dir", dir)
	}
	return os.RemoveAll(dir)
}

// Sweep is the stale-spill janitor: it scans parent for spill directories
// and colstore write-temp directories (CSTmpPrefix) whose owning process no
// longer exists — leftovers of a crash, which the normal deferred Cleanup
// can never reach — and removes them. Per-session
// parents (SessionParent) are reclaimed whole when their owner is dead and
// swept recursively when alive, so a live daemon's periodic re-sweep also
// reclaims query dirs orphaned inside its own sessions by an earlier
// incarnation. Directories owned by live processes (including this one)
// are untouched. It returns the paths removed; a missing parent is not an
// error (nothing to clean).
func Sweep(parent string) ([]string, error) {
	ents, err := os.ReadDir(parent)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("spill: sweep %s: %w", parent, err)
	}
	var removed []string
	var firstErr error
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(parent, ent.Name())
		switch {
		case strings.HasPrefix(ent.Name(), sessPrefix):
			if ownerAlive(dir) {
				// Live session: its query subdirectories may still be
				// stale (a previous daemon's pid can recycle), so recurse.
				sub, err := Sweep(dir)
				removed = append(removed, sub...)
				if err != nil && firstErr == nil {
					firstErr = err
				}
				continue
			}
		case strings.HasPrefix(ent.Name(), dirPrefix),
			strings.HasPrefix(ent.Name(), CSTmpPrefix):
			if ownerAlive(dir) {
				continue
			}
		default:
			continue
		}
		if err := os.RemoveAll(dir); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("spill: sweep %s: %w", dir, err)
			}
			continue
		}
		removed = append(removed, dir)
	}
	return removed, firstErr
}

// ownerAlive reports whether the directory's owner marker names a live
// process. A missing or malformed marker means the owner crashed before
// (or while) writing it, i.e. the directory is stale.
func ownerAlive(dir string) bool {
	b, err := os.ReadFile(filepath.Join(dir, ownerFile))
	if err != nil {
		return false
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || pid <= 0 {
		return false
	}
	if pid == os.Getpid() {
		return true
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	// Signal 0 probes existence without delivering anything; EPERM means
	// the process exists but belongs to someone else — still alive.
	err = p.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}

// Path returns the directory's filesystem path.
func (d *Dir) Path() string { return d.path }

// File returns the named run file, creating it on first use. Names must be
// bare file names (no separators).
func (d *Dir) File(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return nil, fmt.Errorf("spill: dir %s already cleaned up", d.path)
	}
	if f, ok := d.files[name]; ok {
		return f, nil
	}
	path := d.path + string(os.PathSeparator) + name
	osf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("spill: create %s: %w", name, err)
	}
	f := &File{dir: d, name: name, f: osf}
	d.files[name] = f
	return f, nil
}

// NumFiles returns the number of live run files.
func (d *Dir) NumFiles() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.files)
}

// Cleanup closes every file and removes the directory tree. It is
// idempotent and safe to defer alongside error and panic paths; a nil *Dir
// cleans up nothing.
func (d *Dir) Cleanup() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return nil
	}
	d.removed = true
	for _, f := range d.files {
		f.closeFile()
	}
	d.files = nil
	if err := os.RemoveAll(d.path); err != nil {
		return fmt.Errorf("spill: remove %s: %w", d.path, err)
	}
	return nil
}

// File is one append-only run of checksummed frames. Appends are serialized
// by an internal mutex; reads (via Reader) use ReadAt and may run
// concurrently once writing is finished.
type File struct {
	dir  *Dir
	name string

	mu       sync.Mutex
	f        *os.File
	woff     int64 // bytes written (headers + payloads)
	frames   int
	bytes    int64 // payload bytes
	rows     int64
	maxFrame int
}

// Name returns the file's name within its Dir.
func (f *File) Name() string { return f.name }

// Frames returns the number of appended frames.
func (f *File) Frames() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frames
}

// Bytes returns the total payload bytes appended.
func (f *File) Bytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytes
}

// Rows returns the total rows appended.
func (f *File) Rows() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rows
}

// MaxFrame returns the largest payload appended, the buffer size a reader
// needs.
func (f *File) MaxFrame() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.maxFrame
}

// Append writes one frame holding rows whole packed rows. The payload is
// checksummed so any later damage is detected at read time.
func (f *File) Append(payload []byte, rows int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.f == nil {
		return fmt.Errorf("spill: %s: append after close", f.name)
	}
	if err := faultinject.ErrAt(WriteSite); err != nil {
		return fmt.Errorf("spill: write %s frame %d: %w", f.name, f.frames, err)
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if err := faultinject.ErrAt(CorruptSite); err != nil && len(payload) > 0 {
		// Injected bit rot: write a damaged copy under the clean payload's
		// checksum; the caller's buffer stays intact.
		bad := append([]byte(nil), payload...)
		bad[len(bad)/2] ^= 0x40
		payload = bad
	}
	if _, err := f.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("spill: write %s frame %d: %w", f.name, f.frames, err)
	}
	if _, err := f.f.Write(payload); err != nil {
		return fmt.Errorf("spill: write %s frame %d: %w", f.name, f.frames, err)
	}
	f.woff += frameHeaderSize + int64(len(payload))
	f.frames++
	f.bytes += int64(len(payload))
	f.rows += int64(rows)
	if len(payload) > f.maxFrame {
		f.maxFrame = len(payload)
	}
	return nil
}

// Remove closes and deletes the file, detaching it from its Dir (used when
// a recursive re-partition has fully drained a parent run).
func (f *File) Remove() error {
	f.dir.mu.Lock()
	delete(f.dir.files, f.name)
	path := f.dir.path + string(os.PathSeparator) + f.name
	f.dir.mu.Unlock()
	f.mu.Lock()
	f.closeFileLocked()
	f.mu.Unlock()
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("spill: remove %s: %w", f.name, err)
	}
	return nil
}

func (f *File) closeFile() {
	f.mu.Lock()
	f.closeFileLocked()
	f.mu.Unlock()
}

func (f *File) closeFileLocked() {
	if f.f != nil {
		f.f.Close()
		f.f = nil
	}
}

// Reader iterates a file's frames in append order, verifying each frame's
// length and checksum. Readers are independent; each keeps its own cursor.
type Reader struct {
	f     *File
	off   int64
	frame int
	buf   []byte
}

// NewReader returns a reader positioned at the first frame.
func (f *File) NewReader() *Reader { return &Reader{f: f} }

// Next returns the payload of the next frame, valid until the following
// call. It returns io.EOF after the last frame; a truncated or corrupted
// frame is an error naming the file and frame index.
func (r *Reader) Next() ([]byte, error) {
	f := r.f
	f.mu.Lock()
	osf, end := f.f, f.woff
	f.mu.Unlock()
	if r.off == end {
		return nil, io.EOF
	}
	if osf == nil {
		return nil, fmt.Errorf("spill: read %s frame %d: file closed", f.name, r.frame)
	}
	if err := faultinject.ErrAt(ReadSite); err != nil {
		return nil, fmt.Errorf("spill: read %s frame %d: short read: %w", f.name, r.frame, err)
	}
	var hdr [frameHeaderSize]byte
	if r.off+frameHeaderSize > end {
		return nil, fmt.Errorf("spill: read %s frame %d: truncated header (%d bytes past offset %d)",
			f.name, r.frame, end-r.off, r.off)
	}
	if _, err := osf.ReadAt(hdr[:], r.off); err != nil {
		return nil, fmt.Errorf("spill: read %s frame %d: %w", f.name, r.frame, err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:]))
	want := binary.LittleEndian.Uint32(hdr[4:])
	if r.off+frameHeaderSize+int64(n) > end {
		return nil, fmt.Errorf("spill: read %s frame %d: truncated payload (%d of %d bytes)",
			f.name, r.frame, end-r.off-frameHeaderSize, n)
	}
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	buf := r.buf[:n]
	if _, err := osf.ReadAt(buf, r.off+frameHeaderSize); err != nil {
		return nil, fmt.Errorf("spill: read %s frame %d: %w", f.name, r.frame, err)
	}
	if got := crc32.ChecksumIEEE(buf); got != want {
		return nil, fmt.Errorf("spill: read %s frame %d: checksum mismatch (stored %08x, computed %08x)",
			f.name, r.frame, want, got)
	}
	r.off += frameHeaderSize + int64(n)
	r.frame++
	return buf, nil
}
