// Command sqlrun executes ad-hoc SQL (the supported subset) against a
// generated TPC-H database, with the join algorithm selectable per run —
// handy for poking at individual joins:
//
//	sqlrun -sf 0.05 -algo rj "SELECT count(*) FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"partitionjoin/internal/plan"
	"partitionjoin/internal/sql"
	"partitionjoin/internal/storage"
	"partitionjoin/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	algo := flag.String("algo", "bhj", "join algorithm: bhj, rj, brj")
	workers := flag.Int("workers", 0, "workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "query deadline (0 = none), e.g. 500ms, 10s")
	memBudget := flag.Int64("mem-budget", 0, "memory budget in bytes (0 = unlimited); radix joins degrade to fit")
	spillDir := flag.String("spill-dir", "", "directory for spill files; with -mem-budget, joins too large for the budget spill to disk instead of falling back to BHJ")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: sqlrun [flags] \"SELECT ...\"")
		os.Exit(2)
	}
	query := strings.Join(flag.Args(), " ")

	opts := plan.DefaultOptions()
	opts.Workers = *workers
	opts.MemBudget = *memBudget
	opts.SpillDir = *spillDir
	switch strings.ToLower(*algo) {
	case "bhj":
		opts.Algo = plan.BHJ
	case "rj":
		opts.Algo = plan.RJ
	case "brj":
		opts.Algo = plan.BRJ
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	db := tpch.Generate(*sf, 1)
	cat := sql.Catalog{}
	for _, t := range db.Tables() {
		cat[t.Name] = t
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := sql.RunCtx(ctx, cat, query, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printResult(res)
	fmt.Printf("\n%d rows in %v (%.1fM source tuples/s, %v)\n",
		res.Result.NumRows(), res.Duration.Round(1000), res.Throughput()/1e6, opts.Algo)
	for _, ev := range res.Degraded {
		fmt.Printf("degraded: %s\n", ev)
	}
	if *memBudget > 0 {
		fmt.Printf("memory: peak %d B of %d B budget\n", res.MemPeak, *memBudget)
	}
	if res.Spill.Partitions > 0 {
		fmt.Printf("spill: %d partitions, %d B written, %d B reloaded (max working set %d B, %d recursive splits)\n",
			res.Spill.Partitions, res.Spill.SpilledBytes, res.Spill.ReloadedBytes,
			res.Spill.MaxReloadBytes, res.Spill.Recursed)
	}
}

func printResult(res *plan.ExecResult) {
	for _, c := range res.Cols {
		fmt.Printf("%s\t", c.Name)
	}
	fmt.Println()
	n := res.Result.NumRows()
	if n > 50 {
		n = 50
	}
	for i := 0; i < n; i++ {
		for c := range res.Result.Vecs {
			v := &res.Result.Vecs[c]
			switch v.T {
			case storage.Float64:
				fmt.Printf("%.4f\t", v.F64[i])
			case storage.String:
				fmt.Printf("%s\t", v.Str[i])
			default:
				fmt.Printf("%d\t", v.I64[i])
			}
		}
		fmt.Println()
	}
	if res.Result.NumRows() > n {
		fmt.Printf("... (%d more rows)\n", res.Result.NumRows()-n)
	}
}
