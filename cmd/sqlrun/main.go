// Command sqlrun executes ad-hoc SQL (the supported subset) against a
// generated TPC-H database, with the join algorithm selectable per run —
// handy for poking at individual joins:
//
//	sqlrun -sf 0.05 -algo rj "SELECT count(*) FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey"
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"partitionjoin/internal/admit"
	"partitionjoin/internal/cluster"
	"partitionjoin/internal/meter"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/server"
	"partitionjoin/internal/spill"
	"partitionjoin/internal/sql"
	"partitionjoin/internal/storage"
	"partitionjoin/internal/tpch"
)

// errInterrupted is the cancel cause installed by the SIGINT handler, so the
// exit path can tell a ^C apart from a deadline or a watchdog kill.
var errInterrupted = errors.New("interrupted (SIGINT)")

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	algo := flag.String("algo", "bhj", "join algorithm: bhj, rj, brj")
	workers := flag.Int("workers", 0, "workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "query deadline (0 = none), e.g. 500ms, 10s")
	memBudget := flag.Int64("mem-budget", 0, "memory budget in bytes (0 = unlimited); radix joins degrade to fit")
	spillDir := flag.String("spill-dir", "", "directory for spill files; with -mem-budget, joins too large for the budget spill to disk instead of falling back to BHJ")
	globalMem := flag.Int64("global-mem", 0, "process-wide memory pool in bytes (0 = no admission control); queries reserve budgets from it and queue when it is exhausted")
	maxConc := flag.Int("max-concurrency", 0, "maximum queries running at once under admission control (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue length before arrivals are shed with an overload error (0 = default)")
	stallWindow := flag.Duration("stall-window", 0, "watchdog: cancel an admitted query that makes no progress for this long (0 = watchdog off)")
	noAdapt := flag.Bool("no-adapt", false, "disable runtime adaptation (mid-build join migration, skew splits, reservation revision) — the A/B gate against the static plan")
	estScale := flag.Float64("estimate-scale", 0, "corrupt every plan-time cardinality estimate by this factor (0 or 1 = truth); for exercising the adaptation paths")
	retries := flag.Int("retry", 0, "auto-retry a shed (overloaded) query up to N times, sleeping a jittered Retry-After between attempts; 0 exits 75 on the first shed")
	serverURL := flag.String("server", "", "execute against a remote joind (or coordinator) at this base URL instead of a local database; -retry then honors the server's Retry-After and each attempt logs the cluster's shard/breaker/failover state from /statsz")
	cleanSpill := flag.Bool("clean-spill", false, "sweep stale spill directories under -spill-dir and exit")
	flag.Parse()

	// Janitor: reclaim spill directories abandoned by dead processes
	// before this run creates its own.
	if *spillDir != "" {
		removed, err := spill.Sweep(*spillDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spill janitor: %v\n", err)
			os.Exit(1)
		}
		for _, d := range removed {
			fmt.Fprintf(os.Stderr, "spill janitor: removed stale %s\n", d)
		}
	}
	if *cleanSpill {
		if *spillDir == "" {
			fmt.Fprintln(os.Stderr, "-clean-spill requires -spill-dir")
			os.Exit(2)
		}
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: sqlrun [flags] \"SELECT ...\"")
		os.Exit(2)
	}
	query := strings.Join(flag.Args(), " ")

	opts := plan.DefaultOptions()
	opts.Workers = *workers
	opts.MemBudget = *memBudget
	opts.SpillDir = *spillDir
	opts.NoAdapt = *noAdapt
	opts.EstimateScale = *estScale
	switch strings.ToLower(*algo) {
	case "bhj":
		opts.Algo = plan.BHJ
	case "rj":
		opts.Algo = plan.RJ
	case "brj":
		opts.Algo = plan.BRJ
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	var broker *admit.Broker
	if *globalMem > 0 || *maxConc > 0 || *queueDepth > 0 {
		broker = admit.NewBroker(admit.Config{
			GlobalMem:      *globalMem,
			MaxConcurrency: *maxConc,
			QueueDepth:     *queueDepth,
			StallWindow:    *stallWindow,
		})
		defer broker.Close()
		opts.Broker = broker
	}

	// The query's meter is caller-owned: on cancellation RunCtx returns no
	// result, but the scan counters accumulated so far survive on the meter
	// and still make it into the partial summary.
	opts.Meter = meter.New()

	// ^C cancels the in-flight query via cancel-cause; the executor unwinds
	// (releasing any admission reservation), and the exit path prints what
	// the query had done so far. Installed before generation so an early ^C
	// is caught too — it aborts the query at its first context check. A
	// second ^C exits immediately.
	ctx, cancelQuery := context.WithCancelCause(context.Background())
	defer cancelQuery(nil)
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "sqlrun: SIGINT, cancelling query...")
		cancelQuery(errInterrupted)
		<-sigCh
		os.Exit(130)
	}()

	if *serverURL != "" {
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		os.Exit(runRemote(ctx, *serverURL, query, *retries))
	}

	db := tpch.Generate(*sf, 1)
	cat := sql.Catalog{}
	for _, t := range db.Tables() {
		cat[t.Name] = t
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// Overload shedding is the server saying "come back later"; with -retry
	// the client honors that contract itself — a jittered sleep around the
	// broker's suggested Retry-After, then a fresh attempt. Exit 75 is
	// reserved for a query that stayed shed through the whole budget.
	var res *plan.ExecResult
	var err error
	for attempt := 0; ; attempt++ {
		res, err = sql.RunCtx(ctx, cat, query, opts)
		var oe *admit.OverloadError
		if err == nil || !errors.As(err, &oe) || attempt >= *retries {
			break
		}
		d := oe.RetryAfter
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		d = d/2 + time.Duration(rand.Int63n(int64(d))) // ±50% jitter
		fmt.Fprintf(os.Stderr, "sqlrun: overloaded, retry %d/%d in %v...\n",
			attempt+1, *retries, d.Round(time.Millisecond))
		select {
		case <-time.After(d):
		case <-ctx.Done():
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		var oe *admit.OverloadError
		if errors.As(err, &oe) {
			fmt.Fprintf(os.Stderr, "overloaded: retry after %v\n", oe.RetryAfter.Round(time.Millisecond))
			os.Exit(75) // EX_TEMPFAIL: the query is retryable
		}
		if errors.Is(context.Cause(ctx), errInterrupted) {
			printPartial(broker, opts.Meter)
			os.Exit(130) // 128+SIGINT, the shell convention
		}
		os.Exit(1)
	}
	signal.Stop(sigCh)
	printResult(res)
	fmt.Printf("\n%d rows in %v (%.1fM source tuples/s, %v)\n",
		res.Result.NumRows(), res.Duration.Round(1000), res.Throughput()/1e6, opts.Algo)
	for _, ev := range res.Degraded {
		fmt.Printf("degraded: %s\n", ev)
	}
	if *memBudget > 0 || res.Reserved > 0 {
		line := fmt.Sprintf("memory: peak %d B of %d B budget", res.MemPeak, *memBudget)
		if res.Reserved > 0 {
			line = fmt.Sprintf("memory: peak %d B of %d B reserved", res.MemPeak, res.Reserved)
		}
		if res.DroppedEvents > 0 {
			line += fmt.Sprintf(" (%d degradation events dropped from the log)", res.DroppedEvents)
		}
		fmt.Println(line)
	}
	if broker != nil {
		fmt.Printf("admission: reserved %d B of %d B pool, waited %v (%d admitted, %d shed, %d stall kills)\n",
			res.Reserved, broker.Pool(), res.AdmitWait.Round(time.Millisecond),
			broker.Admits(), broker.Sheds(), broker.StallKills())
	}
	if a := res.Adapt; a.Any() {
		fmt.Printf("adaptation: %d migrations, %d partition splits, %d sketch bits, %d reservation revisions (+%d B / -%d B)\n",
			a.Migrations, a.Splits, a.SketchBits, a.Revisions(), a.GrownBytes, a.ShrunkBytes)
		for _, ev := range a.Events {
			fmt.Printf("adapt: %s\n", ev)
		}
	}
	if s := res.Scan; s.MorselsPruned > 0 || s.BatchesPruned > 0 || s.RowsPrefiltered > 0 {
		fmt.Printf("scan: %d morsels + %d batches pruned via zone maps, %d rows prefiltered by pushed predicates\n",
			s.MorselsPruned, s.BatchesPruned, s.RowsPrefiltered)
	}
	if res.Spill.Partitions > 0 {
		fmt.Printf("spill: %d partitions, %d B written, %d B reloaded (max working set %d B, %d recursive splits)\n",
			res.Spill.Partitions, res.Spill.SpilledBytes, res.Spill.ReloadedBytes,
			res.Spill.MaxReloadBytes, res.Spill.Recursed)
	}
}

// runRemote executes the query against a joind (or coordinator) over HTTP.
// Shed/unavailable responses are retried up to the -retry budget with a
// jittered sleep around the server's own Retry-After; every attempt logs the
// cluster picture from /statsz — shard health, breaker state, and the
// failover/reroute counters — so a retrying operator can see whether the
// fleet is rerouting around a fault or genuinely out of capacity.
func runRemote(ctx context.Context, base, query string, retries int) int {
	cl := &server.Client{Base: base}
	var qr *server.QueryResult
	var err error
	start := time.Now()
	for attempt := 0; ; attempt++ {
		qr, err = cl.Query(ctx, query)
		var re *server.RemoteError
		if err == nil || !errors.As(err, &re) || !re.Overloaded() || attempt >= retries {
			break
		}
		d := re.RetryAfter
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		d = d/2 + time.Duration(rand.Int63n(int64(d))) // ±50% jitter
		fmt.Fprintf(os.Stderr, "sqlrun: attempt %d/%d shed (HTTP %d: %s), retrying in %v...\n",
			attempt+1, retries, re.Status, re.Message, d.Round(time.Millisecond))
		logClusterHealth(ctx, base)
		select {
		case <-time.After(d):
		case <-ctx.Done():
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		var re *server.RemoteError
		if errors.As(err, &re) && re.Overloaded() {
			logClusterHealth(ctx, base)
			fmt.Fprintf(os.Stderr, "overloaded: retry after %v\n", re.RetryAfter.Round(time.Millisecond))
			return 75 // EX_TEMPFAIL: the query is retryable
		}
		return 1
	}
	for _, c := range qr.Cols {
		fmt.Printf("%s\t", c.Name)
	}
	fmt.Println()
	n := len(qr.Rows)
	if n > 50 {
		n = 50
	}
	for _, row := range qr.Rows[:n] {
		for _, v := range row {
			fmt.Printf("%v\t", v)
		}
		fmt.Println()
	}
	if len(qr.Rows) > n {
		fmt.Printf("... (%d more rows)\n", len(qr.Rows)-n)
	}
	// X-Result-Cache tells a retrying operator whether the rows were
	// replayed from the server's result cache or executed fresh; a plain
	// server with the cache disabled sends no header and we print nothing.
	cache := ""
	if qr.ResultCache != "" {
		cache = ", result cache " + qr.ResultCache
	}
	fmt.Printf("\n%d rows in %v from %s (query %s%s)\n",
		qr.RowCount, time.Since(start).Round(time.Millisecond), base, qr.QueryID, cache)
	return 0
}

// logClusterHealth prints one line per shard plus the coordinator's failover
// counters from /statsz. A plain (non-coordinator) server reports no shards
// and logs nothing extra.
func logClusterHealth(ctx context.Context, base string) {
	rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, base+"/statsz", nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sqlrun: statsz: %v\n", err)
		return
	}
	defer resp.Body.Close()
	var st cluster.CoordStats
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
		return
	}
	for i, sh := range st.Shards {
		breaker := "closed"
		if sh.BreakerOpen {
			breaker = "OPEN"
		}
		fmt.Fprintf(os.Stderr, "sqlrun:   shard %d %s: %s, breaker %s, %d probe fails, %d fragments (%d retries, %d failures), %d failovers served\n",
			i, sh.Addr, sh.State, breaker, sh.ProbeFails,
			sh.Fragments, sh.Retries, sh.Failures, sh.FailoversServed)
	}
	if len(st.Shards) > 0 {
		fmt.Fprintf(os.Stderr, "sqlrun:   failover: %d attempts, %d succeeded, %d reroutes; %d re-replications, %d restores; ring v%d, replication %d\n",
			st.FailoverAttempts, st.FailoverSuccess, st.Reroutes,
			st.Rereplications, st.Restores, st.RingVersion, st.Replication)
	}
}

// printPartial reports what an interrupted query had done before the
// cancellation unwound it: the admission picture from the broker and the
// scan-layer counters off the caller-owned meter.
func printPartial(broker *admit.Broker, m *meter.Meter) {
	fmt.Fprintln(os.Stderr, "partial summary (query cancelled):")
	if broker != nil {
		fmt.Fprintf(os.Stderr, "  admission: %d admitted, %d shed, %d stall kills; %d B of %d B pool still reserved\n",
			broker.Admits(), broker.Sheds(), broker.StallKills(), broker.InUse(), broker.Pool())
	}
	s := m.Scan()
	fmt.Fprintf(os.Stderr, "  scan: %d morsels + %d batches pruned via zone maps, %d rows prefiltered by pushed predicates\n",
		s.MorselsPruned, s.BatchesPruned, s.RowsPrefiltered)
}

func printResult(res *plan.ExecResult) {
	for _, c := range res.Cols {
		fmt.Printf("%s\t", c.Name)
	}
	fmt.Println()
	n := res.Result.NumRows()
	if n > 50 {
		n = 50
	}
	for i := 0; i < n; i++ {
		for c := range res.Result.Vecs {
			v := &res.Result.Vecs[c]
			switch v.T {
			case storage.Float64:
				fmt.Printf("%.4f\t", v.F64[i])
			case storage.String:
				fmt.Printf("%s\t", v.Str[i])
			default:
				fmt.Printf("%d\t", v.I64[i])
			}
		}
		fmt.Println()
	}
	if res.Result.NumRows() > n {
		fmt.Printf("... (%d more rows)\n", res.Result.NumRows()-n)
	}
}
