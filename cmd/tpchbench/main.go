// Command tpchbench runs the TPC-H side of the paper's evaluation:
// Figure 1 (per-join BRJ-vs-BHJ scatter), Figure 2 (workload histograms),
// Figure 11 (throughput per query and scale factor under BHJ/BRJ/RJ with
// and without late materialization), Figure 12 (per-join impact for
// selected queries), Figure 13 (Q21's annotated join tree), Figure 18
// (speedups over the RJ), and Table 5.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"partitionjoin/internal/bench"
	"partitionjoin/internal/tpch"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1,fig2,fig11,fig12,fig13,fig18,table5,all")
	sfs := flag.String("sf", "0.05", "comma-separated scale factors")
	workers := flag.Int("workers", 0, "query workers (0 = GOMAXPROCS)")
	runs := flag.Int("runs", 3, "repetitions per measurement (median reported)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	printf := func(format string, args ...any) { fmt.Printf(format, args...) }
	want := func(name string) bool { return *exp == "all" || *exp == name }
	show := func(name string, t *bench.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		t.Print(printf)
		fmt.Println()
	}

	for _, sfStr := range strings.Split(*sfs, ",") {
		sf, err := strconv.ParseFloat(strings.TrimSpace(sfStr), 64)
		if err != nil {
			fmt.Printf("bad scale factor %q: %v\n", sfStr, err)
			return
		}
		fmt.Printf("== TPC-H SF %g ==\n", sf)
		db := tpch.Generate(sf, *seed)

		if want("fig2") {
			t, err := tpch.Fig2(db, *workers)
			show("fig2", t, err)
		}
		if want("fig11") {
			t, err := tpch.Fig11(db, *workers, *runs)
			show("fig11", t, err)
		}
		if want("fig1") {
			points, err := tpch.Fig1(db, *workers, *runs)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fig1: %v\n", err)
				os.Exit(1)
			}
			tpch.Fig1Table(points, sf).Print(printf)
			fmt.Println()
		}
		if want("fig12") {
			t, err := tpch.Fig12(db, *workers, *runs, []int{5, 7, 8, 9, 21, 22})
			show("fig12", t, err)
		}
		if want("fig13") {
			t, err := tpch.Fig13(db, *workers)
			show("fig13", t, err)
		}
		if want("fig18") {
			t, err := tpch.Fig18TPCH(db, *workers, *runs)
			show("fig18", t, err)
		}
		if want("table5") {
			t, err := tpch.Table5(db, *workers)
			show("table5", t, err)
		}
	}
}
