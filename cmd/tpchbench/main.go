// Command tpchbench runs the TPC-H side of the paper's evaluation:
// Figure 1 (per-join BRJ-vs-BHJ scatter), Figure 2 (workload histograms),
// Figure 11 (throughput per query and scale factor under BHJ/BRJ/RJ with
// and without late materialization), Figure 12 (per-join impact for
// selected queries), Figure 13 (Q21's annotated join tree), Figure 18
// (speedups over the RJ), and Table 5.
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"partitionjoin/internal/tpch"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1,fig2,fig11,fig12,fig13,fig18,table5,all")
	sfs := flag.String("sf", "0.05", "comma-separated scale factors")
	workers := flag.Int("workers", 0, "query workers (0 = GOMAXPROCS)")
	runs := flag.Int("runs", 3, "repetitions per measurement (median reported)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	printf := func(format string, args ...any) { fmt.Printf(format, args...) }
	want := func(name string) bool { return *exp == "all" || *exp == name }

	for _, sfStr := range strings.Split(*sfs, ",") {
		sf, err := strconv.ParseFloat(strings.TrimSpace(sfStr), 64)
		if err != nil {
			fmt.Printf("bad scale factor %q: %v\n", sfStr, err)
			return
		}
		fmt.Printf("== TPC-H SF %g ==\n", sf)
		db := tpch.Generate(sf, *seed)

		if want("fig2") {
			tpch.Fig2(db, *workers).Print(printf)
			fmt.Println()
		}
		if want("fig11") {
			tpch.Fig11(db, *workers, *runs).Print(printf)
			fmt.Println()
		}
		if want("fig1") {
			points := tpch.Fig1(db, *workers, *runs)
			tpch.Fig1Table(points, sf).Print(printf)
			fmt.Println()
		}
		if want("fig12") {
			tpch.Fig12(db, *workers, *runs, []int{5, 7, 8, 9, 21, 22}).Print(printf)
			fmt.Println()
		}
		if want("fig13") {
			tpch.Fig13(db, *workers).Print(printf)
			fmt.Println()
		}
		if want("fig18") {
			tpch.Fig18TPCH(db, *workers, *runs).Print(printf)
			fmt.Println()
		}
		if want("table5") {
			tpch.Table5(db, *workers).Print(printf)
			fmt.Println()
		}
	}
}
