// Command bandwidth reproduces Figure 10: the per-phase memory traffic of
// the radix join on the Section 5.4.2 payload query (24 B materialized
// tuples), using the byte-accounting meter as the PCM substitute.
package main

import (
	"flag"
	"fmt"
	"os"

	"partitionjoin/internal/bench"
	"partitionjoin/internal/core"
)

func main() {
	scale := flag.Float64("scale", 1.0/64, "workload scale relative to the paper")
	flag.Parse()
	t, err := bench.Fig10(*scale, core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	t.Print(func(format string, args ...any) {
		fmt.Printf(format, args...)
	})
}
