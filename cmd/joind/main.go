// Command joind is the query service daemon: it generates (or will later
// load) a TPC-H database, then serves SQL over HTTP with sessions, a
// prepared-plan cache, admission control, NDJSON streaming, and graceful
// drain on SIGTERM/SIGINT.
//
//	joind -addr :7432 -sf 0.01 -global-mem 268435456 -spill-dir /tmp/joind-spill
//	curl -s localhost:7432/query -d '{"sql":"SELECT count(*) AS n FROM lineitem"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"partitionjoin/internal/admit"
	"partitionjoin/internal/core"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/server"
	"partitionjoin/internal/spill"
	"partitionjoin/internal/sql"
	"partitionjoin/internal/tpch"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7432", "listen address (port 0 picks an ephemeral port)")
	portFile := flag.String("port-file", "", "write the bound host:port here once listening (for harnesses using port 0)")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor of the served database")
	workers := flag.Int("workers", 0, "per-query pipeline workers (0 = GOMAXPROCS)")
	algo := flag.String("algo", "bhj", "default join algorithm: bhj, rj, brj")
	memBudget := flag.Int64("mem-budget", 0, "default per-query memory budget in bytes")
	timeout := flag.Duration("timeout", 0, "default per-query deadline (0 = none)")
	globalMem := flag.Int64("global-mem", 0, "process-wide memory pool in bytes (0 = no admission control)")
	maxConc := flag.Int("max-concurrency", 0, "maximum concurrently running queries (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue length before shedding (0 = default)")
	maxWait := flag.Duration("max-wait", 0, "maximum admission queue wait before shedding (0 = default)")
	stallWindow := flag.Duration("stall-window", 0, "watchdog no-progress window (0 = watchdog off)")
	noAdapt := flag.Bool("no-adapt", false, "disable runtime adaptation (mid-build join migration, skew splits, reservation revision) server-wide")
	spillDir := flag.String("spill-dir", "", "spill parent directory; sessions get private subtrees")
	sweepEvery := flag.Duration("sweep-interval", 5*time.Minute, "period of the spill janitor re-sweep (0 = startup sweep only)")
	sessionTTL := flag.Duration("session-ttl", 10*time.Minute, "idle session expiry")
	planCache := flag.Int("plan-cache", 128, "prepared-plan cache capacity")
	drainGrace := flag.Duration("drain-grace", 15*time.Second, "how long in-flight queries may run after SIGTERM before being cancelled")
	flag.Parse()

	jAlgo, ok := parseAlgoFlag(*algo)
	if !ok {
		fmt.Fprintf(os.Stderr, "joind: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	// Startup janitor: reclaim spill trees abandoned by crashed processes
	// before this daemon starts writing its own.
	if *spillDir != "" {
		removed, err := spill.Sweep(*spillDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "joind: spill janitor: %v\n", err)
			os.Exit(1)
		}
		for _, d := range removed {
			fmt.Fprintf(os.Stderr, "joind: spill janitor removed stale %s\n", d)
		}
	}

	var broker *admit.Broker
	if *globalMem > 0 || *maxConc > 0 || *queueDepth > 0 {
		broker = admit.NewBroker(admit.Config{
			GlobalMem:      *globalMem,
			MaxConcurrency: *maxConc,
			QueueDepth:     *queueDepth,
			MaxWait:        *maxWait,
			StallWindow:    *stallWindow,
		})
		defer broker.Close()
	}

	fmt.Fprintf(os.Stderr, "joind: generating TPC-H at sf=%g...\n", *sf)
	db := tpch.Generate(*sf, 1)
	cat := sql.Catalog{}
	for _, t := range db.Tables() {
		cat[t.Name] = t
	}

	srv := server.New(server.Config{
		Workers:       *workers,
		Algo:          jAlgo,
		Core:          core.DefaultConfig(),
		MemBudget:     *memBudget,
		Timeout:       *timeout,
		SpillDir:      *spillDir,
		PlanCacheSize: *planCache,
		SessionTTL:    *sessionTTL,
		NoAdapt:       *noAdapt,
		Broker:        broker,
	}, cat)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "joind: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "joind: write port file: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "joind: serving %d tables on http://%s\n", len(cat), bound)

	httpSrv := &http.Server{Handler: srv}

	// Periodic re-sweep: a long-lived daemon outlives crashed siblings (or
	// its own previous incarnation's sessions), so orphaned spill runs are
	// reclaimed continuously, not only at boot.
	sweepDone := make(chan struct{})
	var sweepStop chan struct{}
	if *spillDir != "" && *sweepEvery > 0 {
		sweepStop = make(chan struct{})
		go func() {
			defer close(sweepDone)
			t := time.NewTicker(*sweepEvery)
			defer t.Stop()
			for {
				select {
				case <-sweepStop:
					return
				case <-t.C:
				}
				removed, err := spill.Sweep(*spillDir)
				if err != nil {
					fmt.Fprintf(os.Stderr, "joind: spill re-sweep: %v\n", err)
				}
				for _, d := range removed {
					fmt.Fprintf(os.Stderr, "joind: spill re-sweep removed stale %s\n", d)
				}
			}
		}()
	} else {
		close(sweepDone)
	}

	// Serve until SIGTERM/SIGINT, then drain: stop accepting (healthz goes
	// 503 first so load balancers shift traffic), let in-flight queries
	// finish within the grace window, cancel-cause the rest.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "joind: %v received, draining (grace %v)...\n", sig, *drainGrace)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "joind: serve: %v\n", err)
		os.Exit(1)
	}

	httpSrv.SetKeepAlivesEnabled(false)
	clean := srv.Drain(*drainGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "joind: shutdown: %v\n", err)
	}
	if sweepStop != nil {
		close(sweepStop)
	}
	<-sweepDone
	if broker != nil {
		if inUse := broker.InUse(); inUse != 0 {
			fmt.Fprintf(os.Stderr, "joind: WARNING: %d reserved bytes leaked at exit\n", inUse)
			os.Exit(1)
		}
	}
	if clean {
		fmt.Fprintln(os.Stderr, "joind: drained cleanly")
	} else {
		fmt.Fprintln(os.Stderr, "joind: drain grace exceeded; stragglers were cancelled")
	}
}

func parseAlgoFlag(s string) (plan.JoinAlgo, bool) {
	switch strings.ToLower(s) {
	case "bhj":
		return plan.BHJ, true
	case "rj":
		return plan.RJ, true
	case "brj":
		return plan.BRJ, true
	}
	return plan.BHJ, false
}
