// Command joind is the query service daemon. It runs in one of three modes:
//
//   - single node (default): generate a TPC-H database and serve SQL over
//     HTTP with sessions, a prepared-plan cache, admission control, NDJSON
//     streaming, and graceful drain on SIGTERM/SIGINT.
//
//   - shard (-shard-id/-shard-count): the same server over this shard's
//     slice of the cluster's deterministic partitioning — every shard
//     computes the same placement independently, no loader coordination.
//
//   - coordinator (-coordinator -cluster-shards=url,url,...): no data, only the
//     distributed planner: routes, scatters, merges, and gathers over the
//     shard fleet with retries, circuit breakers, and health probing.
//
//     joind -addr :7432 -sf 0.01 -global-mem 268435456 -spill-dir /tmp/joind-spill
//     joind -addr :0 -port-file /tmp/s0.port -sf 0.01 -shard-id 0 -shard-count 3
//     joind -coordinator -cluster-shards http://127.0.0.1:7001,http://127.0.0.1:7002
//     curl -s localhost:7432/query -d '{"sql":"SELECT count(*) AS n FROM lineitem"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"partitionjoin/internal/admit"
	"partitionjoin/internal/cluster"
	"partitionjoin/internal/colstore"
	"partitionjoin/internal/core"
	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/server"
	"partitionjoin/internal/spill"
	"partitionjoin/internal/sql"
	"partitionjoin/internal/tpch"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7432", "listen address (port 0 picks an ephemeral port)")
	portFile := flag.String("port-file", "", "write the bound host:port here once the listener answers /healthz (for harnesses using port 0)")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor of the served database")
	workers := flag.Int("workers", 0, "per-query pipeline workers (0 = GOMAXPROCS)")
	algo := flag.String("algo", "bhj", "default join algorithm: bhj, rj, brj")
	memBudget := flag.Int64("mem-budget", 0, "default per-query memory budget in bytes")
	timeout := flag.Duration("timeout", 0, "default per-query deadline (0 = none)")
	globalMem := flag.Int64("global-mem", 0, "process-wide memory pool in bytes (0 = no admission control)")
	maxConc := flag.Int("max-concurrency", 0, "maximum concurrently running queries (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue length before shedding (0 = default)")
	maxWait := flag.Duration("max-wait", 0, "maximum admission queue wait before shedding (0 = default)")
	stallWindow := flag.Duration("stall-window", 0, "watchdog no-progress window (0 = watchdog off)")
	noAdapt := flag.Bool("no-adapt", false, "disable runtime adaptation (mid-build join migration, skew splits, reservation revision) server-wide")
	spillDir := flag.String("spill-dir", "", "spill parent directory; sessions get private subtrees")
	dataDir := flag.String("data-dir", "", "column store directory (single-node mode): open it when it already holds the requested database, else generate, serve from RAM, and persist in the background for the next boot")
	poolBytes := flag.Int64("pool-bytes", 0, "buffer-pool resident-bytes budget for -data-dir scans (0 = unbounded)")
	sweepEvery := flag.Duration("sweep-interval", 5*time.Minute, "period of the spill janitor re-sweep (0 = startup sweep only)")
	sessionTTL := flag.Duration("session-ttl", 10*time.Minute, "idle session expiry")
	planCache := flag.Int("plan-cache", 128, "prepared-plan cache capacity")
	resultCacheBytes := flag.Int64("result-cache-bytes", 0, "result-cache byte budget (0 = default 64 MiB)")
	noResultCache := flag.Bool("no-result-cache", false, "disable the result cache server-wide")
	drainGrace := flag.Duration("drain-grace", 15*time.Second, "how long in-flight queries may run after SIGTERM before being cancelled")

	shardID := flag.Int("shard-id", -1, "serve shard N of a -shard-count cluster (default: whole database)")
	shardCount := flag.Int("shard-count", 0, "total shards in the cluster (required with -shard-id)")
	coordinator := flag.Bool("coordinator", false, "run the distributed-join coordinator instead of a data node")
	shardsFlag := flag.String("cluster-shards", "", "comma-separated shard base URLs, in shard-id order (coordinator mode)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
	replication := flag.Int("replication", 2, "copies of every partition across the shard fleet (1 = no replicas); every node and the coordinator must agree")
	fragTimeout := flag.Duration("fragment-timeout", 0, "coordinator per-fragment attempt deadline (0 = default)")
	maxRetries := flag.Int("max-retries", 0, "coordinator fragment retry budget (0 = default, negative = none)")
	probeEvery := flag.Duration("probe-interval", 0, "coordinator shard health probe period (0 = default, negative = off)")
	rereplAfter := flag.Duration("rereplicate-after", 0, "coordinator: grace a Down shard gets before its slices re-replicate to restore R (0 = never; needs probing and -replication > 1)")

	var injects []string
	flag.Func("inject", "arm a fault site: site=kind[:duration|:afterN|:once]..., or 'list' to print registered sites (repeatable; kinds: fail, stall, panic)", func(s string) error {
		injects = append(injects, s)
		return nil
	})
	flag.Parse()

	// `-inject list` prints the registered fault-site names and exits, so
	// chaos scripts can discover (and validate) sites instead of hardcoding
	// strings that drift from the code.
	for _, spec := range injects {
		if spec == "list" {
			for _, site := range faultinject.Sites() {
				fmt.Println(site)
			}
			return
		}
	}

	jAlgo, ok := parseAlgoFlag(*algo)
	if !ok {
		fmt.Fprintf(os.Stderr, "joind: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	if (*shardID >= 0) != (*shardCount > 0) {
		fmt.Fprintln(os.Stderr, "joind: -shard-id and -shard-count must be set together")
		os.Exit(2)
	}
	if *shardID >= 0 && *shardID >= *shardCount {
		fmt.Fprintf(os.Stderr, "joind: -shard-id %d out of range for %d shards\n", *shardID, *shardCount)
		os.Exit(2)
	}

	// Fault arming happens before any serving so chaos harnesses can
	// pre-load failures; sites must already be linked in (Register runs from
	// package init of the code under test).
	for _, spec := range injects {
		if err := armInject(spec); err != nil {
			fmt.Fprintf(os.Stderr, "joind: -inject %q: %v\n", spec, err)
			os.Exit(2)
		}
	}

	// Startup janitor: reclaim spill trees and half-written column-store
	// staging directories abandoned by crashed processes before this daemon
	// starts writing its own.
	for _, dir := range sweepTargets(*spillDir, *dataDir) {
		removed, err := spill.Sweep(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "joind: janitor: %v\n", err)
			os.Exit(1)
		}
		for _, d := range removed {
			fmt.Fprintf(os.Stderr, "joind: janitor removed stale %s\n", d)
		}
	}

	var broker *admit.Broker
	if *globalMem > 0 || *maxConc > 0 || *queueDepth > 0 {
		broker = admit.NewBroker(admit.Config{
			GlobalMem:      *globalMem,
			MaxConcurrency: *maxConc,
			QueueDepth:     *queueDepth,
			MaxWait:        *maxWait,
			StallWindow:    *stallWindow,
		})
		defer broker.Close()
	}

	var svc drainableHandler
	var label string
	var store *colstore.Store
	if *coordinator {
		shards := splitShards(*shardsFlag)
		if len(shards) == 0 {
			fmt.Fprintln(os.Stderr, "joind: -coordinator requires -cluster-shards")
			os.Exit(2)
		}
		// The spec needs only table schemas, which are scale-independent;
		// generate the smallest database to derive them.
		spec, err := cluster.TPCHSpec(tpchCatalog(0.001))
		if err != nil {
			fmt.Fprintf(os.Stderr, "joind: %v\n", err)
			os.Exit(1)
		}
		coord, err := cluster.New(cluster.Config{
			Shards:           shards,
			Spec:             spec,
			Vnodes:           *vnodes,
			Replication:      *replication,
			FragmentTimeout:  *fragTimeout,
			MaxRetries:       *maxRetries,
			ProbeInterval:    *probeEvery,
			RereplicateAfter: *rereplAfter,
			Broker:           broker,
			MemBudget:        *memBudget,
			Timeout:          *timeout,
			Workers:          *workers,
			Core:             core.DefaultConfig(),
			SpillDir:         *spillDir,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "joind: %v\n", err)
			os.Exit(1)
		}
		svc = coord
		label = fmt.Sprintf("coordinator over %d shards (replication %d)", len(shards), *replication)
	} else {
		if *dataDir != "" && *shardID >= 0 {
			fmt.Fprintln(os.Stderr, "joind: -data-dir is single-node only (shards generate their slices)")
			os.Exit(2)
		}
		var cat sql.Catalog
		if *dataDir != "" {
			db, st, fromDisk, err := tpch.OpenOrGenerate(*dataDir, *sf, 1, *poolBytes)
			if err != nil {
				fmt.Fprintf(os.Stderr, "joind: %v\n", err)
				os.Exit(1)
			}
			if fromDisk {
				store = st
				fmt.Fprintf(os.Stderr, "joind: opened column store %s (sf=%g)\n", *dataDir, *sf)
			} else {
				// Cold boot: serve the freshly generated RAM tables now and
				// persist them in the background; the next boot opens the
				// store instead of regenerating. An interrupted write leaves
				// only an owner-marked staging directory for the janitor.
				fmt.Fprintf(os.Stderr, "joind: generated TPC-H at sf=%g; writing column store to %s in the background\n", *sf, *dataDir)
				go func() {
					if err := tpch.WriteStore(*dataDir, db, 1); err != nil {
						fmt.Fprintf(os.Stderr, "joind: column store write failed: %v\n", err)
						return
					}
					fmt.Fprintf(os.Stderr, "joind: column store written to %s\n", *dataDir)
				}()
			}
			cat = sql.Catalog{}
			for _, t := range db.Tables() {
				cat[t.Name] = t
			}
		} else {
			fmt.Fprintf(os.Stderr, "joind: generating TPC-H at sf=%g...\n", *sf)
			cat = tpchCatalog(*sf)
		}
		scfg := server.Config{
			Workers:       *workers,
			Algo:          jAlgo,
			Core:          core.DefaultConfig(),
			MemBudget:     *memBudget,
			Timeout:       *timeout,
			SpillDir:      *spillDir,
			DataDir:       *dataDir,
			PlanCacheSize: *planCache,
			SessionTTL:    *sessionTTL,
			NoAdapt:       *noAdapt,
			Broker:        broker,

			ResultCacheBytes: *resultCacheBytes,
			NoResultCache:    *noResultCache,
		}
		if store != nil {
			scfg.BufferPool = store.Pool()
		}
		if *shardID >= 0 {
			// A data node serves its primary slice at the root and its boot
			// replica slices under /replica/<p>/ — all from the same
			// deterministic placement every other process computes.
			spec, err := cluster.TPCHSpec(cat)
			if err != nil {
				fmt.Fprintf(os.Stderr, "joind: %v\n", err)
				os.Exit(1)
			}
			node, err := cluster.NewNode(cat, spec, cluster.NodeConfig{
				ShardID:     *shardID,
				ShardCount:  *shardCount,
				Replication: *replication,
				Vnodes:      *vnodes,
				Server:      scfg,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "joind: %v\n", err)
				os.Exit(1)
			}
			svc = node
			label = fmt.Sprintf("shard %d/%d (+%d replica slices)", *shardID, *shardCount, len(node.ReplicaPrimaries()))
		} else {
			svc = server.New(scfg, cat)
			label = fmt.Sprintf("%d tables", len(cat))
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "joind: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	httpSrv := &http.Server{Handler: svc}

	// Periodic re-sweep: a long-lived daemon outlives crashed siblings (or
	// its own previous incarnation's sessions), so orphaned spill runs are
	// reclaimed continuously, not only at boot.
	sweepDone := make(chan struct{})
	var sweepStop chan struct{}
	if targets := sweepTargets(*spillDir, *dataDir); len(targets) > 0 && *sweepEvery > 0 {
		sweepStop = make(chan struct{})
		go func() {
			defer close(sweepDone)
			t := time.NewTicker(*sweepEvery)
			defer t.Stop()
			for {
				select {
				case <-sweepStop:
					return
				case <-t.C:
				}
				for _, dir := range targets {
					removed, err := spill.Sweep(dir)
					if err != nil {
						fmt.Fprintf(os.Stderr, "joind: re-sweep: %v\n", err)
					}
					for _, d := range removed {
						fmt.Fprintf(os.Stderr, "joind: re-sweep removed stale %s\n", d)
					}
				}
			}
		}()
	} else {
		close(sweepDone)
	}

	// Serve until SIGTERM/SIGINT, then drain: stop accepting (healthz goes
	// 503 first so load balancers shift traffic), let in-flight queries
	// finish within the grace window, cancel-cause the rest.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// The port file is the readiness signal harnesses wait on, so it must
	// not appear before the server answers: probe our own /healthz through
	// the real listener first, then publish atomically (tmp + rename) so a
	// reader never sees a partial write.
	if *portFile != "" {
		if err := awaitReady(bound, 10*time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "joind: readiness probe: %v\n", err)
			os.Exit(1)
		}
		if err := writePortFile(*portFile, bound); err != nil {
			fmt.Fprintf(os.Stderr, "joind: write port file: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "joind: serving %s on http://%s\n", label, bound)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "joind: %v received, draining (grace %v)...\n", sig, *drainGrace)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "joind: serve: %v\n", err)
		os.Exit(1)
	}

	httpSrv.SetKeepAlivesEnabled(false)
	clean := svc.Drain(*drainGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "joind: shutdown: %v\n", err)
	}
	if sweepStop != nil {
		close(sweepStop)
	}
	<-sweepDone
	if broker != nil {
		if inUse := broker.InUse(); inUse != 0 {
			fmt.Fprintf(os.Stderr, "joind: WARNING: %d reserved bytes leaked at exit\n", inUse)
			os.Exit(1)
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "joind: store close: %v\n", err)
		}
	}
	if clean {
		fmt.Fprintln(os.Stderr, "joind: drained cleanly")
	} else {
		fmt.Fprintln(os.Stderr, "joind: drain grace exceeded; stragglers were cancelled")
	}
}

// drainableHandler is what every joind mode serves: an HTTP front with a
// graceful drain.
type drainableHandler interface {
	http.Handler
	Drain(grace time.Duration) bool
}

// sweepTargets lists the distinct non-empty directories the janitor sweeps.
func sweepTargets(dirs ...string) []string {
	var out []string
	for _, d := range dirs {
		if d == "" {
			continue
		}
		dup := false
		for _, o := range out {
			if o == d {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, d)
		}
	}
	return out
}

func tpchCatalog(sf float64) sql.Catalog {
	db := tpch.Generate(sf, 1)
	cat := sql.Catalog{}
	for _, t := range db.Tables() {
		cat[t.Name] = t
	}
	return cat
}

func splitShards(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// awaitReady polls the daemon's own /healthz through the bound listener
// until it answers, so readiness is observed, not assumed.
func awaitReady(bound string, within time.Duration) error {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return err
	}
	// A wildcard listen address is not dialable; probe via loopback.
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	url := "http://" + net.JoinHostPort(host, port) + "/healthz"
	cl := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(within)
	for {
		resp, err := cl.Get(url)
		if err == nil {
			resp.Body.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s not answering after %v: %w", url, within, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// writePortFile publishes the bound address atomically: a reader polling
// for the file sees either nothing or the complete address, never a torn
// write.
func writePortFile(path, bound string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(bound), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// armInject parses one -inject spec (site=kind[:option]...) and arms it.
// Options: a duration sets the stall time, "afterN" skips the first N
// visits, "once" disarms after the first trigger.
func armInject(spec string) error {
	site, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("want site=kind[:option]...")
	}
	if !faultinject.Registered(site) {
		return fmt.Errorf("unknown fault site %q", site)
	}
	parts := strings.Split(rest, ":")
	var f faultinject.Fault
	switch parts[0] {
	case "fail":
		f.Kind = faultinject.Fail
	case "stall":
		f.Kind = faultinject.Stall
	case "panic":
		f.Kind = faultinject.Panic
	default:
		return fmt.Errorf("unknown fault kind %q", parts[0])
	}
	for _, opt := range parts[1:] {
		switch {
		case opt == "once":
			f.Once = true
		case strings.HasPrefix(opt, "after"):
			n, err := strconv.ParseInt(opt[len("after"):], 10, 64)
			if err != nil {
				return fmt.Errorf("bad after option %q", opt)
			}
			f.After = n
		default:
			d, err := time.ParseDuration(opt)
			if err != nil {
				return fmt.Errorf("unknown option %q", opt)
			}
			f.Stall = d
		}
	}
	f.Message = "armed via -inject"
	faultinject.Enable(site, f)
	return nil
}

func parseAlgoFlag(s string) (plan.JoinAlgo, bool) {
	switch strings.ToLower(s) {
	case "bhj":
		return plan.BHJ, true
	case "rj":
		return plan.RJ, true
	case "brj":
		return plan.BRJ, true
	}
	return plan.BHJ, false
}
