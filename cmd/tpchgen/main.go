// Command tpchgen generates the TPC-H database at a given scale factor and
// prints table statistics; with -stats it also runs the workload-property
// analyses behind Figure 2 and Table 5 of the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"partitionjoin/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.1, "scale factor")
	seed := flag.Int64("seed", 1, "generator seed")
	stats := flag.Bool("stats", false, "run the Figure 2 / Table 5 workload analyses")
	workers := flag.Int("workers", 0, "query workers for -stats (0 = GOMAXPROCS)")
	flag.Parse()

	start := time.Now()
	db := tpch.Generate(*sf, *seed)
	fmt.Printf("generated TPC-H SF %g in %v\n\n", *sf, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  %-10s %12s %14s\n", "table", "rows", "bytes")
	fmt.Printf("  %-10s %12s %14s\n", "-----", "----", "-----")
	for _, t := range db.Tables() {
		fmt.Printf("  %-10s %12d %14d\n", t.Name, t.NumRows(), t.ByteSize())
	}

	if *stats {
		fmt.Println()
		fig2, err := tpch.Fig2(db, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig2: %v\n", err)
			os.Exit(1)
		}
		fig2.Print(printf)
		fmt.Println()
		tab5, err := tpch.Table5(db, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "table5: %v\n", err)
			os.Exit(1)
		}
		tab5.Print(printf)
	}
}

func printf(format string, args ...any) { fmt.Printf(format, args...) }
