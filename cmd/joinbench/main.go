// Command joinbench runs the microbenchmark sweeps of the paper's
// evaluation: Figures 8/9 (scalability), 10 (memory traffic), 14
// (selectivity), 15 (payload size), 16 (pipeline depth), 17 (skew), and
// Tables 1, 3 and 4. Workload sizes follow Balkesen et al.'s A and B,
// scaled by -scale to fit the host.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"partitionjoin/internal/bench"
	"partitionjoin/internal/clusterbench"
	"partitionjoin/internal/core"
	"partitionjoin/internal/tpch"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1,fig8,fig9,fig10,fig14,fig15,fig16,fig17,table3,table4,fig18,memladder,adapt,soak,scanprune,coldscan,serve,cluster,failover,all")
	scale := flag.Float64("scale", 1.0/64, "workload scale relative to the paper (1 = 16M x 256M tuples)")
	runs := flag.Int("runs", 3, "repetitions per measurement (median reported)")
	jsonOut := flag.Bool("json", false, "emit tables as JSON instead of aligned text")
	out := flag.String("out", ".", "directory for BENCH_<exp>.json trajectory files (empty disables persistence)")
	addr := flag.String("addr", "", "serve experiment: target a running joind (e.g. http://127.0.0.1:7432) instead of an in-process server")
	clients := flag.Int("clients", 4*runtime.GOMAXPROCS(0), "serve experiment: concurrent closed-loop clients")
	iters := flag.Int("iters", 20, "serve experiment: queries per client")
	sf := flag.Float64("sf", 0.005, "serve/cluster experiments: TPC-H scale factor of the in-process servers")
	flag.Parse()

	bench.Runs = *runs
	cfg := core.DefaultConfig()
	printf := func(format string, args ...any) { fmt.Printf(format, args...) }
	threads := threadSteps()

	run := func(name string, f func() (*bench.Table, error)) {
		if *exp != "all" && *exp != name && !(name == "fig8" && *exp == "fig9") {
			return
		}
		t, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if *jsonOut {
			b, err := t.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println(string(b))
		} else {
			t.Print(printf)
		}
		if *out != "" {
			path, err := bench.WriteTrajectory(*out, name, t)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: trajectory: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "%s: appended to %s\n", name, path)
		}
		fmt.Println()
	}

	run("table1", func() (*bench.Table, error) { return bench.Table1(*scale), nil })
	run("fig8", func() (*bench.Table, error) { return bench.Fig8(*scale, threads, cfg) })
	run("fig10", func() (*bench.Table, error) { return bench.Fig10(*scale, cfg) })
	run("fig14", func() (*bench.Table, error) {
		return bench.Fig14(*scale, []float64{0, 0.05, 0.1, 0.25, 0.5, 0.75, 1}, cfg)
	})
	run("fig15", func() (*bench.Table, error) { return bench.Fig15(*scale, []int{0, 1, 2, 3, 4, 6, 8}, cfg) })
	run("fig16", func() (*bench.Table, error) { return bench.Fig16(*scale, []int{1, 2, 3, 4, 5, 6, 7, 8, 9}, cfg) })
	run("fig17", func() (*bench.Table, error) {
		return bench.Fig17(*scale, []float64{0, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 1.75, 2}, cfg)
	})
	run("table3", func() (*bench.Table, error) { return bench.Table3(*scale, cfg) })
	run("table4", func() (*bench.Table, error) { return bench.Table4(*scale, cfg) })
	run("fig18", func() (*bench.Table, error) { return bench.Fig18Micro(*scale, cfg) })
	run("memladder", func() (*bench.Table, error) {
		return bench.MemLadder(*scale, []int64{0, 8 << 20, 2 << 20, 512 << 10}, cfg)
	})
	run("adapt", func() (*bench.Table, error) {
		return bench.AdaptSweep(*scale, []float64{1.0 / 16, 1.0 / 4, 1, 4, 16}, cfg)
	})
	run("soak", func() (*bench.Table, error) {
		return bench.Soak(*scale, 4*runtime.GOMAXPROCS(0), 2, cfg)
	})
	run("scanprune", func() (*bench.Table, error) {
		rows := int(16e6 * *scale)
		if rows < 1<<18 {
			rows = 1 << 18
		}
		return bench.ScanPrune(rows, []float64{0.01, 0.1, 0.5, 1}, cfg)
	})
	run("coldscan", func() (*bench.Table, error) {
		rows := int(4e6 * *scale)
		if rows < 1<<18 {
			rows = 1 << 18
		}
		return bench.ColdScan(rows, []float64{1, 0.5, 0.25, 0.125}, cfg)
	})
	run("cluster", func() (*bench.Table, error) {
		t, _, err := clusterbench.Cluster(clusterbench.ClusterConfig{
			Catalog: tpch.ServeCatalog(*sf),
			Shards:  []int{1, 2, 4},
			Chaos:   true,
			Core:    cfg,
		})
		return t, err
	})
	run("failover", func() (*bench.Table, error) {
		t, _, err := clusterbench.Failover(clusterbench.FailoverConfig{
			Catalog: tpch.ServeCatalog(*sf),
			Core:    cfg,
		})
		return t, err
	})
	run("serve", func() (*bench.Table, error) {
		scfg := bench.ServeConfig{
			Queries: tpch.ServeQueries(),
			Clients: *clients, Iters: *iters,
			Addr: *addr, Core: cfg,
		}
		if *addr == "" {
			scfg.Catalog = tpch.ServeCatalog(*sf)
		}
		t, _, err := bench.Serve(scfg)
		return t, err
	})
}

// threadSteps sweeps 1..GOMAXPROCS plus 2x for the hyper-threading point.
func threadSteps() []int {
	max := runtime.GOMAXPROCS(0)
	var out []int
	for t := 1; t <= max; t *= 2 {
		out = append(out, t)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	out = append(out, 2*max)
	return out
}
