# Tier-1 gate: everything a change must pass before it lands. The fault
# injection suite runs twice to catch armed-fault leakage across runs.
.PHONY: check build test race faultinject vet bench

check: vet build race faultinject

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

faultinject:
	go test -run TestFaultInjection -count=2 ./...

bench:
	go test -bench=. -benchtime=1x -run '^$$' .
