# Tier-1 gate: everything a change must pass before it lands. The fault
# injection suite runs twice to catch armed-fault leakage across runs, and
# the stress target hammers the spill and fault paths under the race
# detector.
.PHONY: check build test race faultinject vet bench bench-scan bench-join bench-guard stress soak serve-check cluster-check store-check fmtcheck

check: vet build race faultinject stress soak serve-check cluster-check store-check

# BENCH_GUARD=1 make check additionally compares the scan microbenchmarks
# against the committed baseline and fails on a >10% regression. Off by
# default: shared CI boxes are too noisy for a hard perf gate.
ifeq ($(BENCH_GUARD),1)
check: bench-guard
endif

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

# The adaptive-join differential suite is CPU-hungry under the race
# detector; raise the per-package timeout so single-core CI boxes pass.
race:
	go test -race -timeout 45m ./...

faultinject:
	go test -run TestFaultInjection -count=2 ./...

bench:
	go test -bench=. -benchtime=1x -run '^$$' .

# bench-scan smoke-tests the scan-layer microbenchmarks (zone-map pruning,
# predicate pushdown) with a single iteration each.
bench-scan:
	go test -bench 'BenchmarkScan' -benchtime=1x -run '^$$' .

# bench-join runs the join-path microbenchmarks with allocation reporting:
# the end-to-end joins plus the staged-probe and SWWCB-scatter kernels. The
# hot loops are expected to report 0 allocs/op at steady state.
bench-join:
	go test -bench 'BenchmarkJoin' -benchmem -benchtime=1x -run '^$$' .
	go test -bench 'BenchmarkProbe|BenchmarkScatter' -benchmem -run '^$$' ./internal/core/

# bench-guard fails when a BenchmarkScan* result regresses >10% against
# scripts/bench_baseline.txt (best-of-3 comparison; see the script).
bench-guard:
	sh scripts/bench_guard.sh

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# stress repeats the spill and fault-injection suites under the race
# detector: disk-backed degradation must stay exact and leak-free across
# reruns, not just on a lucky first pass.
stress: fmtcheck
	go test -race -count=3 ./internal/spill/ ./internal/faultinject/
	go test -race -timeout 45m -count=3 -run 'Spill|FaultInjection' \
		./internal/plan/ ./internal/exec/

# soak repeats the multi-query admission suite under the race detector:
# concurrent queries contending for one broker must end correct, shed, or
# watchdog-killed — never wrong, leaked, or deadlocked. The server and
# bench halves cover the query service: concurrent sessions streaming
# against one tight broker, with sheds, disconnects, and watchdog kills.
soak:
	go test -race -timeout 45m -count=2 -run 'Soak|Broker|Watchdog|ConcurrencySoak' \
		./internal/admit/ ./internal/plan/ ./internal/bench/ ./internal/server/

# serve-check boots joind on an ephemeral port, load-tests it with the
# closed-loop generator, SIGTERMs it, and asserts a clean drain with a
# balanced admission pool.
serve-check:
	sh scripts/serve_check.sh

# cluster-check boots a 3-shard fleet plus a coordinator on ephemeral
# ports, runs a chaos smoke (armed connect fault, shard kill -> typed 503,
# restart -> recovery), and asserts clean drains everywhere.
cluster-check:
	sh scripts/cluster_check.sh

# store-check is the persistence round trip: cold boot with -data-dir
# (generate + background store write), clean drain, warm boot that must
# open the column store instead of regenerating and answer the same
# queries byte-identically through the buffer pool.
store-check:
	sh scripts/store_check.sh
