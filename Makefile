# Tier-1 gate: everything a change must pass before it lands. The fault
# injection suite runs twice to catch armed-fault leakage across runs, and
# the stress target hammers the spill and fault paths under the race
# detector.
.PHONY: check build test race faultinject vet bench bench-scan stress soak serve-check cluster-check fmtcheck

check: vet build race faultinject stress soak serve-check cluster-check

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

# The adaptive-join differential suite is CPU-hungry under the race
# detector; raise the per-package timeout so single-core CI boxes pass.
race:
	go test -race -timeout 45m ./...

faultinject:
	go test -run TestFaultInjection -count=2 ./...

bench:
	go test -bench=. -benchtime=1x -run '^$$' .

# bench-scan smoke-tests the scan-layer microbenchmarks (zone-map pruning,
# predicate pushdown) with a single iteration each.
bench-scan:
	go test -bench 'BenchmarkScan' -benchtime=1x -run '^$$' .

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# stress repeats the spill and fault-injection suites under the race
# detector: disk-backed degradation must stay exact and leak-free across
# reruns, not just on a lucky first pass.
stress: fmtcheck
	go test -race -count=3 ./internal/spill/ ./internal/faultinject/
	go test -race -timeout 45m -count=3 -run 'Spill|FaultInjection' \
		./internal/plan/ ./internal/exec/

# soak repeats the multi-query admission suite under the race detector:
# concurrent queries contending for one broker must end correct, shed, or
# watchdog-killed — never wrong, leaked, or deadlocked. The server and
# bench halves cover the query service: concurrent sessions streaming
# against one tight broker, with sheds, disconnects, and watchdog kills.
soak:
	go test -race -timeout 45m -count=2 -run 'Soak|Broker|Watchdog|ConcurrencySoak' \
		./internal/admit/ ./internal/plan/ ./internal/bench/ ./internal/server/

# serve-check boots joind on an ephemeral port, load-tests it with the
# closed-loop generator, SIGTERMs it, and asserts a clean drain with a
# balanced admission pool.
serve-check:
	sh scripts/serve_check.sh

# cluster-check boots a 3-shard fleet plus a coordinator on ephemeral
# ports, runs a chaos smoke (armed connect fault, shard kill -> typed 503,
# restart -> recovery), and asserts clean drains everywhere.
cluster-check:
	sh scripts/cluster_check.sh
