#!/bin/sh
# cluster_check: boot a 3-shard fleet plus a coordinator on ephemeral
# ports, verify distributed answers against a chaos smoke (connect fault,
# shard kill, shard restart at a new address), then SIGTERM everything and
# assert clean drains all around. Run from the repository root (make
# cluster-check does).
set -eu

work=$(mktemp -d)
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

go build -o "$work/joind" ./cmd/joind

# await_port <file> <pid>: the port file appears only once the daemon's
# listener answers /healthz, so its presence IS readiness.
await_port() {
	i=0
	while [ ! -s "$1" ]; do
		i=$((i + 1))
		if [ "$i" -gt 300 ]; then
			echo "cluster-check: $1 never appeared" >&2
			cat "$work"/*.log >&2
			exit 1
		fi
		if ! kill -0 "$2" 2>/dev/null; then
			echo "cluster-check: daemon for $1 died during startup" >&2
			cat "$work"/*.log >&2
			exit 1
		fi
		sleep 0.1
	done
}

# query <base-url> <sql>: POST and print the response body.
query() {
	curl -sf -m 30 "$1/query" -d "{\"sql\":\"$2\"}"
}

SF=0.005
for i in 0 1 2; do
	"$work/joind" -addr 127.0.0.1:0 -port-file "$work/s$i.port" -sf "$SF" \
		-shard-id "$i" -shard-count 3 -workers 1 -drain-grace 10s \
		2>"$work/s$i.log" &
	eval "spid$i=$!"
	pids="$pids $!"
done
await_port "$work/s0.port" "$spid0"
await_port "$work/s1.port" "$spid1"
await_port "$work/s2.port" "$spid2"
shards="http://$(cat "$work/s0.port"),http://$(cat "$work/s1.port"),http://$(cat "$work/s2.port")"

# The coordinator starts with a one-shot connect fault armed: its very
# first fragment dial fails and must be absorbed by a retry.
"$work/joind" -coordinator -cluster-shards "$shards" \
	-addr 127.0.0.1:0 -port-file "$work/c.port" -workers 1 -drain-grace 10s \
	-probe-interval 100ms \
	-inject "cluster.fragment.connect=fail:once" \
	2>"$work/c.log" &
cpid=$!
pids="$pids $cpid"
await_port "$work/c.port" "$cpid"
coord="http://$(cat "$work/c.port")"

# Reference answers from shard 0 alone are meaningless; the distributed
# count must equal the sum over shards.
total=$(query "$coord" "SELECT count(*) AS n FROM lineitem" | sed 's/.*"rows":\[\[\([0-9]*\)\]\].*/\1/')
parts=0
for i in 0 1 2; do
	n=$(query "http://$(cat "$work/s$i.port")" "SELECT count(*) AS n FROM lineitem" | sed 's/.*"rows":\[\[\([0-9]*\)\]\].*/\1/')
	parts=$((parts + n))
done
if [ "$total" != "$parts" ]; then
	echo "cluster-check: distributed count $total != shard sum $parts" >&2
	exit 1
fi
echo "cluster-check: distributed count $total matches shard sum (connect fault retried)"

# A distributed join and a shuffle (gather) join both answer.
query "$coord" "SELECT count(*) AS n FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey" >/dev/null
query "$coord" "SELECT count(*) AS n FROM orders o, customer c WHERE o.o_custkey = c.c_custkey" >/dev/null
echo "cluster-check: colocated and shuffle joins answered"

# Chaos: kill shard 2 outright. A join touching it must fail with the
# typed retryable contract: HTTP 503 plus Retry-After.
kill -KILL "$spid2"
code=$(curl -s -m 30 -o "$work/err.json" -w '%{http_code}' "$coord/query" \
	-d '{"sql":"SELECT count(*) AS n FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey"}')
if [ "$code" != "503" ]; then
	echo "cluster-check: dead shard gave HTTP $code, want 503" >&2
	cat "$work/err.json" >&2
	exit 1
fi
if ! grep -q "retry_after_ms" "$work/err.json"; then
	echo "cluster-check: 503 body carries no retry_after_ms" >&2
	cat "$work/err.json" >&2
	exit 1
fi
echo "cluster-check: shard kill surfaced 503 + Retry-After"

# Replicated-only queries must keep answering around the corpse (the
# prober needs a beat to mark it down).
sleep 1
query "$coord" "SELECT count(*) AS n FROM nation" >/dev/null
echo "cluster-check: replicated queries survive the dead shard"

# Restart shard 2 at a new address and point the coordinator at it via
# /statsz-visible ring state... the coordinator relearns through retries
# once the shard answers at the old id's new address. joind has no
# reconfig endpoint, so the restart reuses the SAME address here: bind the
# port the dead shard held.
old2=$(cat "$work/s2.port")
rm -f "$work/s2.port"
"$work/joind" -addr "$old2" -port-file "$work/s2.port" -sf "$SF" \
	-shard-id 2 -shard-count 3 -workers 1 -drain-grace 10s \
	2>"$work/s2b.log" &
spid2=$!
pids="$pids $spid2"
await_port "$work/s2.port" "$spid2"

# The breaker may still be open from the kill; poll until the join
# answers again.
i=0
until query "$coord" "SELECT count(*) AS n FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "cluster-check: cluster never recovered after shard restart" >&2
		cat "$work/c.log" >&2
		exit 1
	fi
	sleep 0.2
done
total2=$(query "$coord" "SELECT count(*) AS n FROM lineitem" | sed 's/.*"rows":\[\[\([0-9]*\)\]\].*/\1/')
if [ "$total2" != "$total" ]; then
	echo "cluster-check: post-restart count $total2 != $total" >&2
	exit 1
fi
echo "cluster-check: shard restart recovered, counts intact"

# Graceful shutdown: coordinator first, then the shards; every log must
# end in a clean drain.
kill -TERM "$cpid"
wait "$cpid" || { echo "cluster-check: coordinator exited nonzero" >&2; cat "$work/c.log" >&2; exit 1; }
for p in "$spid0" "$spid1" "$spid2"; do
	kill -TERM "$p"
	wait "$p" || { echo "cluster-check: shard exited nonzero" >&2; cat "$work"/s*.log >&2; exit 1; }
done
pids=""
for log in c s0 s1 s2b; do
	if ! grep -q "drained cleanly" "$work/$log.log"; then
		echo "cluster-check: no clean drain in $log.log" >&2
		cat "$work/$log.log" >&2
		exit 1
	fi
done
echo "cluster-check: clean drains confirmed (coordinator + 3 shards)"
