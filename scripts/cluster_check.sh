#!/bin/sh
# cluster_check: boot a 3-shard replicated fleet (R=2) plus a coordinator on
# ephemeral ports and walk the full fault ladder end to end: connect-fault
# retry, double fault (a slice's primary AND replica dead -> typed 503 with
# Retry-After), SIGKILL during a partitioned query stream (zero failed
# queries -- replicas serve transparently), re-replication restoring R,
# rejoin dismantling the compensating mounts, and clean drains all around.
# Run from the repository root (make cluster-check does).
set -eu

work=$(mktemp -d)
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

go build -o "$work/joind" ./cmd/joind

# Fault-site discovery: -inject list prints the registered names, so this
# script (and any chaos harness) can verify its sites exist instead of
# arming typos that silently never fire.
for site in cluster.fragment.connect cluster.fragment.stream cluster.ring.stale; do
	if ! "$work/joind" -inject list | grep -qx "$site"; then
		echo "cluster-check: fault site $site missing from -inject list" >&2
		"$work/joind" -inject list >&2
		exit 1
	fi
done
echo "cluster-check: -inject list knows the cluster fault sites"

# await_port <file> <pid>: the port file appears only once the daemon's
# listener answers /healthz, so its presence IS readiness.
await_port() {
	i=0
	while [ ! -s "$1" ]; do
		i=$((i + 1))
		if [ "$i" -gt 300 ]; then
			echo "cluster-check: $1 never appeared" >&2
			cat "$work"/*.log >&2
			exit 1
		fi
		if ! kill -0 "$2" 2>/dev/null; then
			echo "cluster-check: daemon for $1 died during startup" >&2
			cat "$work"/*.log >&2
			exit 1
		fi
		sleep 0.1
	done
}

# query <base-url> <sql>: POST and print the response body.
query() {
	curl -sf -m 30 "$1/query" -d "{\"sql\":\"$2\"}"
}

# statcount <counter>: read one integer counter off the coordinator's /statsz.
statcount() {
	curl -sf -m 10 "$coord/statsz" | sed "s/.*\"$1\":\([0-9]*\).*/\1/"
}

SF=0.005
REPL=2
start_shard() {
	"$work/joind" -addr "${2:-127.0.0.1:0}" -port-file "$work/s$1.port" -sf "$SF" \
		-shard-id "$1" -shard-count 3 -replication "$REPL" -workers 1 \
		-drain-grace 10s 2>>"$work/s$1.log" &
}
for i in 0 1 2; do
	start_shard "$i"
	eval "spid$i=$!"
	pids="$pids $!"
done
await_port "$work/s0.port" "$spid0"
await_port "$work/s1.port" "$spid1"
await_port "$work/s2.port" "$spid2"
shards="http://$(cat "$work/s0.port"),http://$(cat "$work/s1.port"),http://$(cat "$work/s2.port")"

# The coordinator starts with a one-shot connect fault armed: its very
# first fragment dial fails and must be absorbed by a retry. Probing is on
# and a Down shard gets a 2s grace before its slices re-replicate.
"$work/joind" -coordinator -cluster-shards "$shards" -replication "$REPL" \
	-addr 127.0.0.1:0 -port-file "$work/c.port" -workers 1 -drain-grace 10s \
	-probe-interval 100ms -rereplicate-after 2s -max-retries 2 \
	-inject "cluster.fragment.connect=fail:once" \
	2>"$work/c.log" &
cpid=$!
pids="$pids $cpid"
await_port "$work/c.port" "$cpid"
coord="http://$(cat "$work/c.port")"

# Reference answers from shard 0 alone are meaningless; the distributed
# count must equal the sum over the primary slices.
total=$(query "$coord" "SELECT count(*) AS n FROM lineitem" | sed 's/.*"rows":\[\[\([0-9]*\)\]\].*/\1/')
parts=0
for i in 0 1 2; do
	n=$(query "http://$(cat "$work/s$i.port")" "SELECT count(*) AS n FROM lineitem" | sed 's/.*"rows":\[\[\([0-9]*\)\]\].*/\1/')
	parts=$((parts + n))
done
if [ "$total" != "$parts" ]; then
	echo "cluster-check: distributed count $total != shard sum $parts" >&2
	exit 1
fi
echo "cluster-check: distributed count $total matches shard sum (connect fault retried)"

# A distributed join and a shuffle (gather) join both answer; the join
# count is the reference every chaos phase must keep reproducing.
JOIN="SELECT count(*) AS n FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey"
jref=$(query "$coord" "$JOIN" | sed 's/.*"rows":\[\[\([0-9]*\)\]\].*/\1/')
query "$coord" "SELECT count(*) AS n FROM orders o, customer c WHERE o.o_custkey = c.c_custkey" >/dev/null
echo "cluster-check: colocated and shuffle joins answered (join count $jref)"

# Double fault: slice 1's chain is shards {1,2} under R=2 -- kill both and
# the replicas are exhausted. The contract is a typed 503 with an honest
# Retry-After, not a hang and not a wrong answer.
kill -KILL "$spid1" "$spid2"
code=$(curl -s -m 30 -o "$work/err.json" -w '%{http_code}' "$coord/query" \
	-d "{\"sql\":\"$JOIN\"}")
if [ "$code" != "503" ]; then
	echo "cluster-check: double fault gave HTTP $code, want 503" >&2
	cat "$work/err.json" >&2
	exit 1
fi
if ! grep -q "retry_after_ms" "$work/err.json"; then
	echo "cluster-check: 503 body carries no retry_after_ms" >&2
	cat "$work/err.json" >&2
	exit 1
fi
echo "cluster-check: double fault surfaced 503 + Retry-After"

# Replicated-only queries must keep answering around the corpses.
query "$coord" "SELECT count(*) AS n FROM nation" >/dev/null
echo "cluster-check: replicated queries survive the dead shards"

# Rejoin both shards at their old addresses (a rescheduled process binding
# the same service address); the prober re-admits them and the join answers
# again once the breakers close.
for i in 1 2; do
	old=$(cat "$work/s$i.port")
	rm -f "$work/s$i.port"
	start_shard "$i" "$old"
	eval "spid$i=$!"
	pids="$pids $(eval echo \$spid$i)"
	await_port "$work/s$i.port" "$(eval echo \$spid$i)"
done
i=0
until out=$(query "$coord" "$JOIN" 2>/dev/null) &&
	[ "$(printf '%s' "$out" | sed 's/.*"rows":\[\[\([0-9]*\)\]\].*/\1/')" = "$jref" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "cluster-check: cluster never recovered after the double fault" >&2
		cat "$work/c.log" >&2
		exit 1
	fi
	sleep 0.2
done
echo "cluster-check: both shards rejoined, join count intact"

# SIGKILL during a partitioned query stream: with R=2 a single dead shard
# must be invisible -- every query in the stream succeeds with the right
# answer, served by replicas (failover counters prove the fault was real).
rebase=$(statcount rereplications)
query "$coord" "$JOIN" >"$work/inflight.json" &
qpid=$!
kill -KILL "$spid2"
failed=0
for i in 1 2 3 4 5 6 7 8; do
	out=$(query "$coord" "$JOIN" 2>/dev/null) || { failed=$((failed + 1)); continue; }
	got=$(printf '%s' "$out" | sed 's/.*"rows":\[\[\([0-9]*\)\]\].*/\1/')
	if [ "$got" != "$jref" ]; then
		echo "cluster-check: mid-kill query $i answered $got, want $jref" >&2
		exit 1
	fi
done
wait "$qpid" || failed=$((failed + 1))
if [ "$failed" != "0" ]; then
	echo "cluster-check: $failed queries failed during the SIGKILL stream (want 0)" >&2
	cat "$work/c.log" >&2
	exit 1
fi
grep -q "\"rows\":\[\[$jref\]\]" "$work/inflight.json" || {
	echo "cluster-check: in-flight query answered wrong across the kill" >&2
	cat "$work/inflight.json" >&2
	exit 1
}
fos=$(statcount failover_success)
if [ "$fos" = "0" ]; then
	echo "cluster-check: no failovers recorded; the kill tested nothing" >&2
	exit 1
fi
echo "cluster-check: SIGKILL mid-stream: 0 failed queries, $fos transparent failovers"

# R restored: the dead shard held 2 slice copies (its primary + 1 replica);
# after the grace window both must re-replicate onto the survivors.
i=0
until [ "$(($(statcount rereplications) - rebase))" -ge 2 ]; do
	i=$((i + 1))
	if [ "$i" -gt 150 ]; then
		echo "cluster-check: re-replication never restored R" >&2
		curl -s "$coord/statsz" >&2
		exit 1
	fi
	sleep 0.2
done
echo "cluster-check: re-replication restored R=2 ($(($(statcount rereplications) - rebase)) slice transfers)"

# Rejoin the shard; the compensating mounts are dismantled (restores) and
# the count still holds.
resbase=$(statcount restores)
old2=$(cat "$work/s2.port")
rm -f "$work/s2.port"
start_shard 2 "$old2"
spid2=$!
pids="$pids $spid2"
await_port "$work/s2.port" "$spid2"
i=0
until [ "$(($(statcount restores) - resbase))" -ge 2 ]; do
	i=$((i + 1))
	if [ "$i" -gt 150 ]; then
		echo "cluster-check: rejoin never dismantled the compensating mounts" >&2
		curl -s "$coord/statsz" >&2
		exit 1
	fi
	sleep 0.2
done
total2=$(query "$coord" "SELECT count(*) AS n FROM lineitem" | sed 's/.*"rows":\[\[\([0-9]*\)\]\].*/\1/')
if [ "$total2" != "$total" ]; then
	echo "cluster-check: post-rejoin count $total2 != $total" >&2
	exit 1
fi
echo "cluster-check: rejoin dismantled extras, counts intact"

# Graceful shutdown: coordinator first, then the shards; every live
# daemon's log must end in a clean drain.
kill -TERM "$cpid"
wait "$cpid" || { echo "cluster-check: coordinator exited nonzero" >&2; cat "$work/c.log" >&2; exit 1; }
for p in "$spid0" "$spid1" "$spid2"; do
	kill -TERM "$p"
	wait "$p" || { echo "cluster-check: shard exited nonzero" >&2; cat "$work"/s*.log >&2; exit 1; }
done
pids=""
for log in c s0 s1 s2; do
	if ! grep -q "drained cleanly" "$work/$log.log"; then
		echo "cluster-check: no clean drain in $log.log" >&2
		cat "$work/$log.log" >&2
		exit 1
	fi
done
echo "cluster-check: clean drains confirmed (coordinator + 3 shards)"
