#!/bin/sh
# store_check: the persistence round-trip gate. Boot joind cold with a
# -data-dir (it generates TPC-H, serves from RAM, and persists the column
# store in the background), query it, wait for the store write, SIGTERM for
# a clean drain, then reboot on the same directory: the warm boot must open
# the store instead of regenerating, come up fast, and answer the same
# queries byte-identically out of the mmap-backed pool.
# Run from the repository root (make store-check does).
set -eu

work=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

go build -o "$work/joind" ./cmd/joind

boot() { # boot <logfile>
	rm -f "$work/port"
	"$work/joind" -addr 127.0.0.1:0 -port-file "$work/port" -sf 0.002 \
		-data-dir "$work/data" -pool-bytes 4194304 \
		-global-mem 67108864 -spill-dir "$work/spill" -drain-grace 10s \
		2>"$1" &
	pid=$!
	i=0
	while [ ! -s "$work/port" ]; do
		i=$((i + 1))
		if [ "$i" -gt 300 ]; then
			echo "store-check: joind never wrote its port file" >&2
			cat "$1" >&2
			exit 1
		fi
		if ! kill -0 "$pid" 2>/dev/null; then
			echo "store-check: joind died during startup" >&2
			cat "$1" >&2
			exit 1
		fi
		sleep 0.1
	done
	addr=$(cat "$work/port")
}

ask() { # ask <outfile>
	: >"$1"
	for sql in \
		'SELECT count(*) AS n FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey' \
		'SELECT l_returnflag, l_linestatus, sum(l_quantity) AS qty, count(*) AS n FROM lineitem GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus' \
		'SELECT o_orderpriority, count(*) AS n FROM orders GROUP BY o_orderpriority ORDER BY o_orderpriority'; do
		# Drop the trailing stats object before comparing: timings (and
		# adaptive-join events) vary run to run; the answer must not.
		printf '{"sql": "%s"}' "$sql" |
			curl -sS -f -X POST --data-binary @- "http://$addr/query" |
			sed 's/,"stats":.*//' >>"$1"
		printf '\n' >>"$1"
	done
}

stop() { # stop <logfile>
	kill -TERM "$pid"
	if ! wait "$pid"; then
		echo "store-check: joind exited nonzero after SIGTERM" >&2
		cat "$1" >&2
		exit 1
	fi
	pid=""
	if ! grep -q "drained cleanly" "$1"; then
		echo "store-check: no clean drain in joind log" >&2
		cat "$1" >&2
		exit 1
	fi
}

# --- cold boot: generate, serve, persist in the background ---------------
boot "$work/cold.log"
ask "$work/cold.out"

i=0
while ! grep -q "column store written to" "$work/cold.log"; do
	i=$((i + 1))
	if [ "$i" -gt 600 ]; then
		echo "store-check: background store write never finished" >&2
		cat "$work/cold.log" >&2
		exit 1
	fi
	sleep 0.1
done
stop "$work/cold.log"

# --- warm boot: open the store, no regeneration --------------------------
warm_start=$(date +%s)
boot "$work/warm.log"
warm_secs=$(($(date +%s) - warm_start))
if ! grep -q "opened column store" "$work/warm.log"; then
	echo "store-check: warm boot regenerated instead of opening the store" >&2
	cat "$work/warm.log" >&2
	exit 1
fi
# Opening mmap'd segments is metadata work; even sf 0.002 generation plus
# the build above fits well inside this, so a warm boot that generates
# would also trip the log assertion first. Keep the bound loose for CI.
if [ "$warm_secs" -gt 15 ]; then
	echo "store-check: warm restart took ${warm_secs}s (bound 15s)" >&2
	exit 1
fi

ask "$work/warm.out"
if ! cmp -s "$work/cold.out" "$work/warm.out"; then
	echo "store-check: warm-boot answers diverge from cold boot:" >&2
	diff "$work/cold.out" "$work/warm.out" >&2 || true
	exit 1
fi

# The warm server must actually be scanning through the buffer pool.
if ! curl -sS -f "http://$addr/statsz" | grep -q '"buffer_pool"'; then
	echo "store-check: /statsz reports no buffer_pool on the warm boot" >&2
	exit 1
fi

stop "$work/warm.log"
echo "store-check: warm restart in ${warm_secs}s, identical answers, clean drains"
