#!/bin/sh
# bench_guard: fail when a scan microbenchmark regresses more than 10%
# against the committed baseline (scripts/bench_baseline.txt).
#
# Each benchmark runs -count reps and the fastest rep is compared: the
# fastest run is the least-noisy estimate of the kernel's true cost, so a
# regression must survive best-of-N to count — wall-clock jitter on a
# loaded CI box does not fail the build, a real kernel slowdown does.
#
# Regenerate the baseline after an intentional perf change (run on the
# machine whose numbers the baseline records):
#
#	BENCH_BASELINE_UPDATE=1 sh scripts/bench_guard.sh
#
# Run from the repository root (make bench-guard does).
set -eu

baseline=scripts/bench_baseline.txt
tolerance=110 # percent of baseline ns/op allowed before failing

out=$(go test -bench 'BenchmarkScan' -benchtime 3x -count 3 -run '^$' .)
best=$(printf '%s\n' "$out" | awk '
	/^BenchmarkScan/ {
		name = $1
		sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
		ns = $3
		if (!(name in b) || ns < b[name]) b[name] = ns
	}
	END { for (n in b) printf "%s %.0f\n", n, b[n] }' | sort)
if [ -z "$best" ]; then
	echo "bench-guard: no BenchmarkScan results parsed" >&2
	printf '%s\n' "$out" >&2
	exit 1
fi

if [ "${BENCH_BASELINE_UPDATE:-0}" = "1" ]; then
	printf '%s\n' "$best" >"$baseline"
	echo "bench-guard: baseline rewritten:"
	cat "$baseline"
	exit 0
fi

if [ ! -f "$baseline" ]; then
	echo "bench-guard: $baseline missing; run BENCH_BASELINE_UPDATE=1 sh scripts/bench_guard.sh" >&2
	exit 1
fi

fail=0
while read -r name ns; do
	base=$(awk -v n="$name" '$1 == n { print $2 }' "$baseline")
	if [ -z "$base" ]; then
		echo "bench-guard: $name not in baseline; rerun with BENCH_BASELINE_UPDATE=1" >&2
		fail=1
		continue
	fi
	if [ $((ns * 100)) -gt $((base * tolerance)) ]; then
		echo "bench-guard: FAIL $name: $ns ns/op vs baseline $base ns/op (> ${tolerance}%)" >&2
		fail=1
	else
		echo "bench-guard: ok   $name: $ns ns/op vs baseline $base ns/op"
	fi
done <<EOF
$best
EOF
exit $fail
