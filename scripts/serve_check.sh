#!/bin/sh
# serve_check: boot joind on an ephemeral port, drive it with the
# closed-loop load generator, SIGTERM it, and assert a clean drain.
# Run from the repository root (make serve-check does).
set -eu

work=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

go build -o "$work/joind" ./cmd/joind

"$work/joind" -addr 127.0.0.1:0 -port-file "$work/port" -sf 0.002 \
	-global-mem 67108864 -spill-dir "$work/spill" -drain-grace 10s \
	2>"$work/joind.log" &
pid=$!

i=0
while [ ! -s "$work/port" ]; do
	i=$((i + 1))
	if [ "$i" -gt 300 ]; then
		echo "serve-check: joind never wrote its port file" >&2
		cat "$work/joind.log" >&2
		exit 1
	fi
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "serve-check: joind died during startup" >&2
		cat "$work/joind.log" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$work/port")

go run ./cmd/joinbench -exp serve -addr "http://$addr" -clients 8 -iters 5

kill -TERM "$pid"
if ! wait "$pid"; then
	echo "serve-check: joind exited nonzero after SIGTERM" >&2
	cat "$work/joind.log" >&2
	exit 1
fi
pid=""
if ! grep -q "drained cleanly" "$work/joind.log"; then
	echo "serve-check: no clean drain in joind log" >&2
	cat "$work/joind.log" >&2
	exit 1
fi
echo "serve-check: clean drain confirmed"
