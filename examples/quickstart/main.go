// Quickstart: build two relations, run the paper's microbenchmark join
// through all three DBMS-integrated implementations (BHJ, RJ, BRJ), and
// verify they agree — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"time"

	"partitionjoin/internal/bench"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/sql"
)

func main() {
	// Workload A of Balkesen et al., scaled down to a laptop: a dense
	// unique build side and a 16x larger foreign-key probe side.
	spec := bench.WorkloadA(1.0 / 256)
	fmt.Printf("workload A: %d build tuples (%d B), %d probe tuples (%d B)\n\n",
		spec.BuildTuples, spec.BuildBytes(), spec.ProbeTuples, spec.ProbeBytes())
	build, probe := spec.Tables()

	cat := sql.Catalog{"build": build, "probe": probe}
	const query = "SELECT count(*) FROM probe r, build s WHERE r.fk = s.key"
	fmt.Printf("query: %s\n\n", query)

	var first int64
	for _, algo := range []plan.JoinAlgo{plan.BHJ, plan.RJ, plan.BRJ} {
		opts := plan.DefaultOptions()
		opts.Algo = algo
		start := time.Now()
		res, err := sql.Run(cat, query, opts)
		if err != nil {
			panic(err)
		}
		count, err := res.ScalarI64()
		if err != nil {
			panic(err)
		}
		if first == 0 {
			first = count
		} else if count != first {
			panic("join implementations disagree")
		}
		fmt.Printf("  %-4s count=%d  time=%-10v  throughput=%.1fM tuples/s\n",
			algo, count, time.Since(start).Round(time.Microsecond), res.Throughput()/1e6)
	}
	fmt.Println("\nall three join implementations agree.")
}
