// Starschema: a miniature of Figure 16 — chain joins over a star schema
// and watch the radix join's per-join throughput decay with pipeline depth
// (every RJ re-materializes the widening tuples) while the BHJ streams the
// probe side through all joins in one pipeline.
package main

import (
	"fmt"
	"os"

	"partitionjoin/internal/bench"
	"partitionjoin/internal/core"
	"partitionjoin/internal/plan"
)

func must(r bench.Result, err error) bench.Result {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return r
}

func main() {
	cfg := core.DefaultConfig()
	bench.Runs = 1
	spec := bench.WorkloadA(1.0 / 512)
	const maxDepth = 5
	dims, fact := bench.StarTables(spec, maxDepth)
	fmt.Printf("star schema: %d-row fact table, %d dimensions of %d rows\n\n",
		fact.NumRows(), maxDepth, dims[0].NumRows())
	fmt.Printf("%-6s %22s %22s\n", "depth", "BHJ [T/s per join]", "RJ [T/s per join]")
	for depth := 1; depth <= maxDepth; depth++ {
		bhj := must(bench.RunStar(dims, fact, depth, plan.BHJ, 0, cfg))
		rj := must(bench.RunStar(dims, fact, depth, plan.RJ, 0, cfg))
		if bhj.Checksum != rj.Checksum {
			panic("checksum mismatch")
		}
		fmt.Printf("%-6d %20.1fM %20.1fM\n", depth, bhj.Throughput/1e6, rj.Throughput/1e6)
	}
}
