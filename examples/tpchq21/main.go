// TPC-H Q21 walkthrough: generate the database, run the five-join
// left-deep plan of Figure 13 under each join algorithm, and print the
// join tree annotated with measured build/probe volumes — including the
// build-side semi and anti joins that implement EXISTS / NOT EXISTS.
package main

import (
	"fmt"
	"time"

	"partitionjoin/internal/plan"
	"partitionjoin/internal/tpch"
)

func main() {
	const sf = 0.02
	db := tpch.Generate(sf, 1)
	fmt.Printf("TPC-H SF %g: %d lineitem rows\n\n", sf, db.Lineitem.NumRows())

	// Annotated join tree (Figure 13).
	tree, err := tpch.Fig13(db, 0)
	if err != nil {
		panic(err)
	}
	tree.Print(func(format string, args ...any) { fmt.Printf(format, args...) })
	fmt.Println()

	var ref string
	for _, algo := range []plan.JoinAlgo{plan.BHJ, plan.BRJ, plan.RJ} {
		opts := plan.DefaultOptions()
		opts.Algo = algo
		r := &tpch.Runner{Opts: opts}
		start := time.Now()
		res := tpch.Q21(db, r)
		if r.Err != nil {
			panic(r.Err)
		}
		top := ""
		if res.Result.NumRows() > 0 {
			top = fmt.Sprintf("top supplier %q waits=%d",
				res.Result.Vecs[0].Str[0], res.Result.Vecs[1].I64[0])
		}
		fmt.Printf("  %-4s %4d suppliers, %v, %.1fM tuples/s   %s\n",
			algo, res.Result.NumRows(), time.Since(start).Round(time.Millisecond),
			r.Throughput()/1e6, top)
		if ref == "" {
			ref = top
		} else if top != ref {
			panic("algorithms disagree on Q21")
		}
	}
}
