// Selectivity: a miniature of Figure 14 — sweep the fraction of probe
// tuples that find a join partner and watch the Bloom-filtered radix join
// (BRJ) beat the plain RJ at low selectivity and lose past ~50%, with the
// adaptive variant switching the filter off.
package main

import (
	"fmt"
	"os"

	"partitionjoin/internal/bench"
	"partitionjoin/internal/core"
	"partitionjoin/internal/plan"
)

func must(r bench.Result, err error) bench.Result {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return r
}

func main() {
	cfg := core.DefaultConfig()
	bench.Runs = 1
	fmt.Println("selectivity sweep, workload A (scaled); throughput in M tuples/s")
	fmt.Printf("%-10s %8s %8s %8s %14s\n", "partners", "BRJ", "RJ", "BHJ", "BRJ(adaptive)")
	for _, sel := range []float64{0.05, 0.25, 0.5, 0.75, 1.0} {
		spec := bench.WorkloadA(1.0 / 256)
		spec.Selectivity = sel
		build, probe := spec.Tables()
		brj := must(bench.RunDBMS(build, probe, nil, bench.DBMSOpts{Algo: plan.BRJ, Core: cfg}))
		rj := must(bench.RunDBMS(build, probe, nil, bench.DBMSOpts{Algo: plan.RJ, Core: cfg}))
		bhj := must(bench.RunDBMS(build, probe, nil, bench.DBMSOpts{Algo: plan.BHJ, Core: cfg}))
		acfg := cfg
		acfg.AdaptiveBloom = true
		ad := must(bench.RunDBMS(build, probe, nil, bench.DBMSOpts{Algo: plan.BRJ, Core: acfg}))
		if brj.Checksum != rj.Checksum || rj.Checksum != bhj.Checksum {
			panic("checksum mismatch across joins")
		}
		fmt.Printf("%-10s %8.1f %8.1f %8.1f %14.1f\n",
			fmt.Sprintf("%.0f%%", sel*100),
			brj.Throughput/1e6, rj.Throughput/1e6, bhj.Throughput/1e6, ad.Throughput/1e6)
	}
}
