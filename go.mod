module partitionjoin

go 1.22
